"""Aggregation records and the declarative SLO gate."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.loadgen import (
    RequestRecord,
    ShapeRun,
    SLOBudget,
    check_slo,
    load_budgets,
    summarize,
    write_loadgen_report,
)


def _record(status: int, latency_s: float = 0.01, model: str = "demo") -> RequestRecord:
    return RequestRecord(
        model=model, scheduled_s=0.0, started_s=0.0,
        latency_s=latency_s, service_s=latency_s, status=status,
    )


def _run(records, *, shape="steady", offered=None, duration_s=2.0) -> ShapeRun:
    return ShapeRun(
        shape=shape, params={"shape": shape}, rate=10.0, duration_s=duration_s,
        offered=offered if offered is not None else len(records),
        records=records, models=["demo"], elapsed_s=duration_s,
    )


class TestSummarize:
    def test_status_classes_and_rates(self):
        records = (
            [_record(200, 0.010)] * 6
            + [_record(429)] * 2
            + [_record(404), _record(500), _record(0)]
        )
        summary = summarize(_run(records))
        assert summary["n_200"] == 6
        assert summary["n_429"] == 2
        assert summary["n_4xx"] == 1
        assert summary["n_5xx"] == 1
        assert summary["n_transport"] == 1
        assert summary["rate_429"] == pytest.approx(2 / 11)
        assert summary["error_rate"] == pytest.approx(2 / 11)
        assert summary["achieved_rate"] == pytest.approx(3.0)
        assert summary["per_model"]["demo"] == 11

    def test_latency_quantiles_over_successes_only(self):
        records = [_record(200, 0.010)] * 9 + [_record(200, 0.100)]
        records += [_record(429, 5.0)] * 5  # shed requests must not skew latency
        summary = summarize(_run(records))
        assert summary["latency_ms"]["count"] == 10
        assert summary["latency_ms"]["p50"] == pytest.approx(10.0)
        assert summary["latency_ms"]["p99"] < 110.0

    def test_empty_run(self):
        summary = summarize(_run([], offered=0))
        assert summary["latency_ms"] == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
        assert summary["rate_429"] == 0.0


class TestReportEnvelope:
    def test_write_and_reload(self, tmp_path):
        record = summarize(_run([_record(200)]))
        path = write_loadgen_report(
            [record], tmp_path / "BENCH_loadgen.json", {"rate": 10.0}
        )
        payload = json.loads(path.read_text())
        from repro.api import FORMAT_VERSION

        assert payload["benchmark"] == "loadgen"
        assert payload["model_format_version"] == FORMAT_VERSION
        assert payload["params"]["rate"] == 10.0
        assert payload["shapes"][0]["shape"] == "steady"
        assert "repro_version" in payload


class TestBudgetLoading:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "budgets.json"
        path.write_text(json.dumps({
            "steady": {"p99_ms": 250, "max_429_rate": 0.01},
            "*": {"max_error_rate": 0.05},
        }))
        budgets = load_budgets(path)
        assert budgets["steady"].p99_ms == 250.0
        assert budgets["steady"].max_429_rate == 0.01
        assert budgets["steady"].p95_ms is None
        assert budgets["*"].max_error_rate == 0.05

    def test_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "budgets.json"
        path.write_text('{"steady": {"p99_millis": 250}}')
        with pytest.raises(ReproError, match="unknown SLO budget key"):
            load_budgets(path)

    def test_non_numeric_limit_rejected(self, tmp_path):
        path = tmp_path / "budgets.json"
        path.write_text('{"steady": {"p99_ms": "fast"}}')
        with pytest.raises(ReproError, match="must be a number"):
            load_budgets(path)

    def test_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_budgets(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_budgets(bad)


class TestCheckSLO:
    def test_no_applicable_budget_passes(self):
        record = summarize(_run([_record(200)]))
        assert check_slo([record], {"spike": SLOBudget(p99_ms=0.001)}) == []

    def test_p99_violation(self):
        record = summarize(_run([_record(200, 0.5)]))
        violations = check_slo([record], {"steady": SLOBudget(p99_ms=100.0)})
        assert len(violations) == 1
        assert violations[0].budget == "p99_ms"
        assert violations[0].observed == pytest.approx(500.0)
        assert "steady" in str(violations[0])

    def test_429_rate_violation_via_fallback_budget(self):
        record = summarize(_run([_record(200)] * 5 + [_record(429)] * 5))
        violations = check_slo([record], {"*": SLOBudget(max_429_rate=0.2)})
        assert [v.budget for v in violations] == ["max_429_rate"]

    def test_min_achieved_fraction_catches_silent_drops(self):
        # 20 offered, only 5 delivered: fast but absorbing half the load.
        record = summarize(_run([_record(200, 0.001)] * 5, offered=20))
        violations = check_slo(
            [record], {"steady": SLOBudget(min_achieved_fraction=0.9)}
        )
        assert [v.budget for v in violations] == ["min_achieved_fraction"]
        assert violations[0].observed == pytest.approx(0.25)

    def test_all_budgets_met(self):
        record = summarize(_run([_record(200, 0.005)] * 10))
        budgets = {
            "steady": SLOBudget(p99_ms=100.0, max_429_rate=0.1,
                                min_achieved_fraction=0.9),
        }
        assert check_slo([record], budgets) == []

    def test_shape_budget_overrides_fallback(self):
        record = summarize(_run([_record(200, 0.5)]))
        budgets = {
            "steady": SLOBudget(p99_ms=1000.0),  # lenient specific budget
            "*": SLOBudget(p99_ms=1.0),          # strict fallback ignored
        }
        assert check_slo([record], budgets) == []
