"""Unit tests for the command-line interface (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_accuracy_defaults(self):
        args = build_parser().parse_args(["accuracy"])
        assert args.dataset == "Iris"
        assert args.error_model == "gaussian"
        assert args.widths == [0.05, 0.10]

    def test_sensitivity_parameter_choices(self):
        args = build_parser().parse_args(["sensitivity", "--parameter", "w"])
        assert args.parameter == "w"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sensitivity", "--parameter", "x"])

    def test_engine_flag_on_every_experiment_command(self):
        for command in ("accuracy", "noise", "efficiency", "sensitivity"):
            args = build_parser().parse_args([command, "--engine", "tuples"])
            assert args.engine == "tuples"
            assert build_parser().parse_args([command]).engine == "columnar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "--engine", "warp-drive"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestCommands:
    def test_example_command(self, capsys):
        assert main(["example"]) == 0
        output = capsys.readouterr().out
        assert "AVG" in output and "UDT" in output
        assert "0.6667" in output and "1.0000" in output

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "JapaneseVowel" in output and "Iris" in output

    def test_accuracy_command_small(self, capsys):
        code = main(
            ["accuracy", "--dataset", "Iris", "--scale", "0.3", "--samples", "6",
             "--folds", "3", "--widths", "0.1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "AVG accuracy" in output and "Iris" in output

    def test_efficiency_command_small(self, capsys):
        code = main(
            ["efficiency", "--dataset", "Iris", "--scale", "0.25", "--samples", "8"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "UDT-ES" in output and "entropy calcs" in output

    def test_sensitivity_command_width_sweep(self, capsys):
        code = main(
            ["sensitivity", "--dataset", "Iris", "--scale", "0.25", "--samples", "8",
             "--parameter", "w"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "w" in output and "entropy calcs" in output

    def test_noise_command_small(self, capsys):
        code = main(
            ["noise", "--dataset", "Iris", "--scale", "0.3", "--samples", "6",
             "--perturbations", "0.0", "--widths", "0.0", "0.1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "UDT accuracy" in output

    def test_accuracy_command_with_tuples_engine(self, capsys):
        code = main(
            ["accuracy", "--dataset", "Iris", "--scale", "0.3", "--samples", "6",
             "--folds", "3", "--widths", "0.1", "--engine", "tuples"]
        )
        assert code == 0
        assert "AVG accuracy" in capsys.readouterr().out
