"""The ``:predict`` votes extension: per-member vote matrices over HTTP."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api.spec import gaussian
from repro.ensemble import UDTForestClassifier, reduce_votes
from repro.exceptions import ServingError
from repro.serve import ServingClient, create_server


@pytest.fixture(scope="module")
def votes_forest():
    rng = np.random.default_rng(29)
    X = rng.normal(size=(50, 3))
    y = np.where(X[:, 0] * X[:, 1] > 0, "same", "mixed")
    return UDTForestClassifier(
        n_estimators=5, spec=gaussian(w=0.1, s=6), random_state=2
    ).fit(X, y)


@pytest.fixture
def forest_server(tmp_path, votes_forest, serving_model):
    votes_forest.save(tmp_path / "forest.zip")
    serving_model.save(tmp_path / "tree.zip")
    server = create_server(tmp_path, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=5.0)


@pytest.fixture
def client(forest_server):
    return ServingClient(forest_server.url)


def test_full_votes_match_the_offline_member_votes(client, votes_forest, serving_rows):
    payload = client.predict_votes("forest", serving_rows)
    assert payload["model"] == "forest"
    assert payload["n_members"] == 5
    assert payload["n_members_total"] == 5
    assert payload["votes"].shape == (5, len(serving_rows), 2)
    assert np.array_equal(payload["votes"], votes_forest.member_votes(serving_rows))
    reduced = reduce_votes(payload["votes"], payload["n_members_total"])
    assert np.array_equal(reduced, votes_forest.predict_proba(serving_rows))


def test_member_subset_votes(client, votes_forest, serving_rows):
    payload = client.predict_votes("forest", serving_rows, members=[0, 4])
    assert payload["n_members"] == 2
    assert payload["n_members_total"] == 5
    assert np.array_equal(
        payload["votes"], votes_forest.member_votes(serving_rows, members=[0, 4])
    )


def test_votes_on_a_single_tree_model_is_400(client, serving_rows):
    with pytest.raises(ServingError) as error:
        client.predict_votes("tree", serving_rows)
    assert error.value.status == 400
    assert "not a forest" in str(error.value)


def test_out_of_range_members_are_400(client, serving_rows):
    with pytest.raises(ServingError) as error:
        client.predict_votes("forest", serving_rows, members=[7])
    assert error.value.status == 400


def test_members_without_votes_flag_is_400(client, serving_rows):
    with pytest.raises(ServingError) as error:
        client.request_json(
            "/v1/models/forest:predict",
            {"rows": np.asarray(serving_rows).tolist(), "members": [0]},
        )
    assert error.value.status == 400
    assert "votes" in str(error.value)


def test_votes_requests_count_in_metrics(client, serving_rows):
    client.predict_votes("forest", serving_rows)
    snapshot = client.metrics()
    assert snapshot["predict_requests"] == 1
    assert snapshot["rows_total"] == len(serving_rows)
