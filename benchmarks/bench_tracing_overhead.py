"""Tracing overhead gate: sampled requests must stay near-free.

Launches the distributed topology once — two ``repro serve`` replicas and
one ``repro router`` in front, none with local sampling enabled — and
drives the same open-loop steady workload three times through the router
with the **load generator as the tracing edge**, minting trace ids for
0%, 10% and 100% of requests.  The propagated ``X-Repro-Sampled: 1``
context makes the router and both replicas record full span trees for
every sampled request, so the 100% run pays the whole observability tax:
span bookkeeping on the hot path at every tier plus ring-buffer commits.

The lane gates on two properties:

* **overhead** — the routed p99 at 100% sampling stays under ``1.15 x``
  the p99 at 0% sampling plus a fixed slack (shared CI runners are noisy;
  the slack absorbs scheduler jitter, not design regressions);
* **correctness** — a traced, fanned-out forest prediction is
  bit-identical to the offline model, and the minted trace id is actually
  joinable from the router's ``/debug/traces`` buffer (so the gate can
  never pass vacuously with tracing silently disabled).

``BENCH_tracing.json`` lands in ``benchmarks/results/`` with all three
runs' latency summaries and the overhead ratio.  Collected by the CI
benchmark smoke lane (``bench_tracing_overhead``); run standalone with
``PYTHONPATH=src:benchmarks python benchmarks/bench_tracing_overhead.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

from helpers import save_json_artifact

RATE = 25.0
DURATION_S = 4.0
USERS = 8
SAMPLE_RATES = (0.0, 0.1, 1.0)
#: p99 at 100% sampling must stay under p99 at 0% * MAX_OVERHEAD + SLACK_MS.
MAX_OVERHEAD = 1.15
SLACK_MS = 25.0


def _train_models(source_dir: Path):
    from repro.api import UDTClassifier
    from repro.api.spec import gaussian
    from repro.ensemble import UDTForestClassifier

    rng = np.random.default_rng(7)
    X = rng.normal(size=(80, 3))
    y = np.where(X[:, 0] + X[:, 2] > 0, "pos", "neg")
    forest = UDTForestClassifier(
        n_estimators=8, spec=gaussian(w=0.1, s=8), random_state=0
    ).fit(X, y)
    forest.save(source_dir / "forest.zip")
    tree = UDTClassifier(spec=gaussian(w=0.1, s=8), min_split_weight=4.0).fit(X, y)
    tree.save(source_dir / "tree.zip")
    return forest


def _start(command: "list[str]", what: str):
    """Launch a subprocess that prints ``... on http://host:port``."""
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    deadline = time.monotonic() + 30.0
    url = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if " on http://" in line:
            url = line.rsplit(" on ", 1)[1].strip()
            break
    if url is None:
        process.kill()
        raise RuntimeError(f"{what} did not print its URL within 30s")
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=1.0):
                return process, url
        except OSError:
            time.sleep(0.1)
    process.kill()
    raise RuntimeError(f"{what} at {url} never became healthy")


def _stop(process) -> None:
    process.terminate()
    try:
        process.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        process.kill()


def _measure(url: str, sample_rate: float):
    from repro.loadgen import LoadGenerator, summarize
    from repro.loadgen.shapes import make_shape

    # The same seed for every rate: identical arrival schedule and row
    # payloads, so the only thing that varies between runs is tracing.
    generator = LoadGenerator(
        url, users=USERS, timeout_s=10.0, seed=0, trace_sample_rate=sample_rate
    )
    run = generator.run(make_shape("steady"), rate=RATE, duration_s=DURATION_S)
    return summarize(run)


def _trace_is_joinable(router_url: str, trace_id: str) -> bool:
    """True once the router's buffer holds the trace (commit is post-response)."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        with urllib.request.urlopen(
            f"{router_url}/debug/traces?trace_id={trace_id}", timeout=5.0
        ) as response:
            payload = json.loads(response.read().decode("utf-8"))
        if payload["traces"]:
            names = {span["name"] for span in payload["traces"][0]["spans"]}
            return "router.predict" in names
        time.sleep(0.05)
    return False


def main() -> int:
    from repro.obs.trace import SAMPLED_HEADER, TRACE_ID_HEADER, new_trace_id
    from repro.serve import ServingClient

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        source = root / "source"
        source.mkdir()
        forest = _train_models(source)
        replica_dirs = [root / "replica-0", root / "replica-1"]

        processes = []
        try:
            replica_urls = []
            for directory in replica_dirs:
                directory.mkdir()
                process, url = _start(
                    [sys.executable, "-m", "repro", "serve",
                     "--models", str(directory), "--port", "0",
                     "--max-batch", "32", "--max-wait-ms", "1.0"],
                    "replica",
                )
                processes.append(process)
                replica_urls.append(url)
            router_command = [
                sys.executable, "-m", "repro", "router", "--port", "0",
                "--health-interval", "0.5", "--up-after", "1", "--down-after", "2",
                "--fanout-trees", "4",
                "--sync-source", str(source), "--sync-interval", "5",
            ]
            for url in replica_urls:
                router_command += ["--replica", url]
            for directory in replica_dirs:
                router_command += ["--sync-dest", str(directory)]
            router_process, router_url = _start(router_command, "router")
            processes.append(router_process)

            # Bit-identity under tracing: a sampled, fanned-out forest
            # prediction must equal the offline model exactly, and its
            # trace id must be joinable from the router's buffer.
            rows = np.random.default_rng(11).normal(size=(16, 3))
            trace_id = new_trace_id()
            routed = ServingClient(router_url).predict(
                "forest", rows,
                headers={TRACE_ID_HEADER: trace_id, SAMPLED_HEADER: "1"},
            )
            if not np.array_equal(routed.probabilities, forest.predict_proba(rows)):
                print("FAIL: traced forest predictions are not bit-identical")
                return 1
            if not _trace_is_joinable(router_url, trace_id):
                print(
                    "FAIL: the sampled trace never appeared in the router's "
                    "/debug/traces — the overhead gate would be vacuous"
                )
                return 1
            print(f"bit-identity + joinability checks passed (trace {trace_id})")

            # Warm both models through the router before measuring.
            ServingClient(router_url).predict("forest", rows[:2])
            ServingClient(router_url).predict("tree", rows[:2])
            summaries = {
                rate: _measure(router_url, rate) for rate in SAMPLE_RATES
            }
        finally:
            for process in processes:
                _stop(process)

    for rate, summary in summaries.items():
        if summary["n_200"] == 0:
            print(f"FAIL: the sampling={rate:g} run served no successful request")
            return 1
    full = summaries[1.0]
    if full["traces"]["n_sampled"] != full["offered"]:
        print(
            f"FAIL: sampling=1.0 minted {full['traces']['n_sampled']} trace ids "
            f"for {full['offered']} requests"
        )
        return 1

    baseline_p99 = summaries[0.0]["latency_ms"]["p99"]
    traced_p99 = full["latency_ms"]["p99"]
    budget_ms = baseline_p99 * MAX_OVERHEAD + SLACK_MS
    ratio = traced_p99 / baseline_p99 if baseline_p99 > 0 else float("inf")
    records = [
        {"target": "router", "trace_sample_rate": rate, **summaries[rate]}
        for rate in SAMPLE_RATES
    ]
    path = save_json_artifact(
        "tracing",
        records,
        params={
            "rate": RATE, "duration_s": DURATION_S, "users": USERS,
            "replicas": 2, "sample_rates": list(SAMPLE_RATES),
            "max_overhead": MAX_OVERHEAD, "slack_ms": SLACK_MS,
        },
        extra={
            "overhead": {
                "baseline_p99_ms": baseline_p99,
                "traced_p99_ms": traced_p99,
                "ratio": ratio,
                "budget_ms": budget_ms,
            },
            "bit_identical": True,
        },
    )
    print(f"wrote {path}")
    for rate in SAMPLE_RATES:
        latency = summaries[rate]["latency_ms"]
        print(
            f"sampling {rate:>4g}: p99 {latency['p99']:.1f} ms, "
            f"p50 {latency['p50']:.1f} ms, "
            f"{summaries[rate]['traces']['n_sampled']} traced"
        )
    if traced_p99 > budget_ms:
        print(
            f"FAIL: p99 at 100% sampling {traced_p99:.1f} ms exceeds "
            f"{MAX_OVERHEAD:g}x baseline + {SLACK_MS:g} ms = {budget_ms:.1f} ms"
        )
        return 1
    print(f"tracing overhead gate passed (ratio {ratio:.2f}, budget {budget_ms:.1f} ms)")
    return 0


def bench_tracing_overhead(benchmark):
    """CI smoke entry point: the whole gate must pass."""
    assert benchmark(main) == 0


if __name__ == "__main__":
    raise SystemExit(main())
