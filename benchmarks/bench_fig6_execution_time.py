"""E4 — Fig. 6: execution time of AVG, UDT and the pruned variants.

One benchmark per (dataset, algorithm) pair times the full tree construction
on the uncertain training data (w = 10 %, Gaussian error model).  The paper's
expected ordering is AVG fastest, then UDT-ES / UDT-GP / UDT-LP / UDT-BP and
UDT slowest; in this Python/numpy implementation the ordering of the pruned
variants relative to plain UDT also tracks the number of entropy
calculations (see Fig. 7), although constant factors differ from the paper's
Java implementation.

The report step additionally cross-checks the two tree-construction engines
(the columnar default against the per-tuple object walker): every strategy
must report identical entropy-calculation counts and build bitwise-identical
trees on both engines, and the columnar engine's speedup on baseline UDT is
measured and archived in ``BENCH_fig6.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core import UDTClassifier
from repro.eval import EfficiencyExperiment, format_efficiency_results

from helpers import BENCH_SAMPLES, BENCH_SCALE, save_artifact, save_json_artifact

_DATASETS = ("Iris", "Glass", "Ionosphere")
_ALGORITHMS = ("AVG", "UDT", "UDT-BP", "UDT-LP", "UDT-GP", "UDT-ES")
_STRATEGIES = tuple(a for a in _ALGORITHMS if a != "AVG")

_results = []
_training_cache = {}


def _experiment(name: str) -> EfficiencyExperiment:
    return EfficiencyExperiment(
        name, scale=BENCH_SCALE, n_samples=BENCH_SAMPLES, width_fraction=0.10, seed=29
    )


def _training_data(name: str):
    if name not in _training_cache:
        _training_cache[name] = _experiment(name).prepare_training_data()
    return _training_cache[name]


def _timed_fit(training, strategy: str, engine: str, repeats: int = 3):
    """Best-of-``repeats`` wall time plus the last fitted model."""
    best = float("inf")
    model = None
    for _ in range(repeats):
        model = UDTClassifier(strategy=strategy, engine=engine)
        start = time.perf_counter()
        model.fit(training)
        best = min(best, time.perf_counter() - start)
    return best, model


@pytest.mark.parametrize("algorithm", _ALGORITHMS)
@pytest.mark.parametrize("dataset", _DATASETS)
def bench_fig6_build_time(benchmark, dataset, algorithm):
    """Time one full tree construction for the given dataset and algorithm."""
    experiment = _experiment(dataset)
    training = _training_data(dataset)
    result = benchmark(lambda: experiment.run_single(algorithm, training))
    _results.append(result)


def bench_fig6_report(benchmark):
    """Write the Fig. 6 artefacts from the timings collected above."""
    benchmark(lambda: format_efficiency_results(_results))
    body = format_efficiency_results(_results)
    body += (
        "\n\nNote: wall-clock times come from a vectorised pure-Python implementation;"
        "\nthe paper's Fig. 6 ordering is reproduced faithfully by the entropy-calculation"
        "\ncounts (Fig. 7), which are implementation-independent."
    )

    # Engine cross-check: both engines must agree on every strategy, and the
    # columnar engine should be markedly faster on baseline UDT.
    records = [
        {
            "dataset": r.dataset,
            "algorithm": r.algorithm,
            "engine": "columnar",
            "wall_seconds": r.elapsed_seconds,
            "entropy_calculations": r.entropy_calculations,
            "candidate_split_points": r.candidate_split_points,
            "n_nodes": r.n_nodes,
        }
        for r in _results
    ]
    speedups = {}
    for dataset in _DATASETS:
        training = _training_data(dataset)
        for strategy in _STRATEGIES:
            columnar_time, columnar = _timed_fit(training, strategy, "columnar")
            tuples_time, tuples = _timed_fit(training, strategy, "tuples")
            assert columnar is not None and tuples is not None
            columnar_stats = columnar.build_stats_.split_search
            tuples_stats = tuples.build_stats_.split_search
            assert (
                columnar.tree_.structure_signature() == tuples.tree_.structure_signature()
            ), (dataset, strategy)
            if strategy == "UDT-ES":
                # End-point sampling prunes against a running threshold, so a
                # last-bit dispersion difference between the engines (the
                # per-tuple path renormalises pdf masses at every truncation,
                # the columnar path scales once) can shift how much *work*
                # the pruning saved, even though the resulting tree is
                # identical.  Allow a small drift in the counts.
                assert columnar_stats.entropy_evaluations == pytest.approx(
                    tuples_stats.entropy_evaluations, rel=0.02
                ), (dataset, strategy)
            else:
                assert (
                    columnar_stats.entropy_evaluations == tuples_stats.entropy_evaluations
                ), (dataset, strategy)
                assert (
                    columnar_stats.lower_bound_evaluations
                    == tuples_stats.lower_bound_evaluations
                ), (dataset, strategy)
            records.append(
                {
                    "dataset": dataset,
                    "algorithm": strategy,
                    "engine": "tuples",
                    "wall_seconds": tuples_time,
                    "entropy_calculations": tuples_stats.entropy_evaluations
                    + tuples_stats.lower_bound_evaluations,
                    "n_nodes": tuples.tree_.n_nodes,
                }
            )
            if strategy == "UDT":
                speedups[dataset] = tuples_time / columnar_time

    geometric_mean = 1.0
    for value in speedups.values():
        geometric_mean *= value
    geometric_mean **= 1.0 / max(len(speedups), 1)

    body += (
        "\n\nColumnar engine speedup on baseline UDT (per-tuple engine time /"
        "\ncolumnar engine time, best of 3, identical trees and entropy counts):\n"
    )
    for dataset, value in speedups.items():
        body += f"  {dataset}: {value:.2f}x\n"
    body += f"  geometric mean: {geometric_mean:.2f}x\n"
    save_artifact("fig6_execution_time", "Fig. 6 — execution time per algorithm", body)
    save_json_artifact(
        "fig6",
        records,
        params={"width_fraction": 0.10, "seed": 29},
        extra={
            "udt_speedup_columnar_vs_tuples": speedups,
            "udt_speedup_geometric_mean": geometric_mean,
        },
    )

    # Shape checks (implementation independent): AVG, which processes a
    # single mean instead of s samples per pdf, does far less work than
    # exhaustive UDT on the same data.  (A strongly pruned variant such as
    # UDT-ES can occasionally undercut AVG's count, because AVG still
    # evaluates every distinct mean; wall-clock times at bench scale are
    # overhead dominated.)
    for dataset in _DATASETS:
        rows = {r.algorithm: r for r in _results if r.dataset == dataset}
        if len(rows) == len(_ALGORITHMS):
            assert rows["AVG"].entropy_calculations < rows["UDT"].entropy_calculations
    # The columnar engine must win clearly on baseline UDT overall.  Only
    # asserted at quarter scale upwards: at CI smoke scale the individual
    # fits are milliseconds, where a loaded shared runner can distort the
    # ratio with no code change (the value is archived in BENCH_fig6.json
    # either way).
    if BENCH_SCALE >= 0.25:
        assert geometric_mean > 1.5, speedups
