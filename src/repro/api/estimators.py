"""Array-first estimator facade.

The canonical classifier classes live in :mod:`repro.core` (they *are* the
sklearn-protocol estimators — see :class:`repro.core.estimator.BaseTreeEstimator`
for the contract); this module re-exports them so the whole public API is
importable from one place::

    from repro.api import UDTClassifier, gaussian

    clf = UDTClassifier(spec=gaussian(w=0.1, s=50)).fit(X, y)
    clf.predict(X_new)
"""

from __future__ import annotations

from repro.core.averaging import AveragingClassifier
from repro.core.estimator import BaseTreeEstimator, clone_estimator
from repro.core.udt import UDTClassifier

__all__ = [
    "AveragingClassifier",
    "BaseTreeEstimator",
    "UDTClassifier",
    "clone_estimator",
]
