"""Pruning comparison: UDT vs UDT-BP / UDT-LP / UDT-GP / UDT-ES (Figs. 6-7 style).

Run with::

    python examples/pruning_comparison.py [dataset] [scale]

Builds the same uncertain decision tree with every split-finding strategy and
reports how many entropy-like calculations each needed, how long it took and
that all of them produce the same tree (safe pruning).
"""

from __future__ import annotations

import sys

from repro.core import AveragingClassifier, UDTClassifier, STRATEGY_NAMES
from repro.data import inject_uncertainty, load_dataset
from repro.eval import format_table


def main(argv: list[str]) -> None:
    dataset_name = argv[0] if argv else "Glass"
    scale = float(argv[1]) if len(argv) > 1 else 0.4

    print(f"Loading the {dataset_name!r} stand-in (scale {scale}) ...")
    training, _, spec = load_dataset(dataset_name, scale=scale, seed=13)
    if not spec.repeated_measurements:
        training = inject_uncertainty(
            training, width_fraction=0.10, n_samples=50, error_model="gaussian"
        )
    print(
        f"  {len(training)} tuples, {training.n_attributes} attributes, "
        f"{training.n_classes} classes, ~50 samples per pdf"
    )

    rows = []
    avg = AveragingClassifier().fit(training)
    rows.append(
        (
            "AVG",
            avg.build_stats_.total_entropy_like_calculations,
            "-",
            f"{avg.build_stats_.elapsed_seconds:.3f}",
            avg.tree_.n_nodes,
            f"{avg.score(training):.3f}",
        )
    )

    reference_calcs = None
    tree_texts = set()
    for name in STRATEGY_NAMES:
        model = UDTClassifier(strategy=name).fit(training)
        stats = model.build_stats_
        calcs = stats.total_entropy_like_calculations
        if name == "UDT":
            reference_calcs = calcs
        percentage = f"{100.0 * calcs / reference_calcs:.2f}%" if reference_calcs else "-"
        rows.append(
            (
                name,
                calcs,
                percentage,
                f"{stats.elapsed_seconds:.3f}",
                model.tree_.n_nodes,
                f"{model.score(training):.3f}",
            )
        )
        tree_texts.add(model.tree_.to_text())

    print("\nConstruction cost per algorithm:")
    print(
        format_table(
            ("algorithm", "entropy calcs", "% of UDT", "time (s)", "tree nodes", "train accuracy"),
            rows,
        )
    )
    identical = "yes" if len(tree_texts) == 1 else "NO"
    print(f"\nAll UDT variants produced identical trees (safe pruning): {identical}")
    print(
        "Expected shape (paper Figs. 6-7): UDT > UDT-BP > UDT-LP > UDT-GP > UDT-ES in "
        "entropy calculations, with identical resulting trees."
    )


if __name__ == "__main__":
    main(sys.argv[1:])
