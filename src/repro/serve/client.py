"""Thin stdlib HTTP client for the serving API, with typed results.

Used by the tests, the benchmark drivers, the load generator and the CI
smoke jobs; it is also the reference for how to talk to the server from any
other language — every call is one JSON request/response pair over plain
HTTP.

    client = ServingClient("http://127.0.0.1:8000")
    client.health()                       # {"status": "ok", ...}
    client.models()                       # [ModelInfo, ...]
    result = client.predict("iris", [[5.1, 3.5, 1.4, 0.2]])
    result.labels                         # ['setosa']
    result.probabilities                  # ndarray (1, n_classes)
    snap = client.metrics()               # MetricsSnapshot
    snap.latency_ms["p99"]                # typed attribute access
    snap["latency_ms"]["p99"]             # legacy dict-style access

Responses deserialise into typed dataclasses — :class:`PredictResult`,
:class:`ModelInfo` and :class:`MetricsSnapshot` — which all keep
*dict-style access* (``result["labels"]``, ``snap["errors"]``,
``info.get("error")``) over the raw payload, so code written against the
former plain-dict returns keeps working unchanged.  ``metrics_text()``
fetches the Prometheus text exposition instead of JSON.

Server-side failures surface as :class:`~repro.exceptions.ServingError`
carrying the HTTP status code and the server's ``error`` message; 429
rejections additionally carry the server's back-off hint as
``ServingError.retry_after`` (seconds), and ``predict(..., retries_429=N)``
turns that hint into automatic bounded retries for callers that prefer
waiting out a load spike over handling the rejection themselves.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ServingError

__all__ = [
    "MetricsSnapshot",
    "ModelInfo",
    "PredictResult",
    "RouterClient",
    "ServingClient",
]

_MISSING = object()


class PayloadView:
    """Dict-style access over the raw JSON payload of a typed result.

    The dataclasses below carry the server's payload verbatim in ``raw``;
    this mixin forwards ``result[key]`` / ``key in result`` / ``.get`` /
    ``.keys`` / iteration to it, so callers written against the old
    plain-dict returns keep working against the typed objects.
    """

    raw: dict

    def __getitem__(self, key):
        return self.raw[key]

    def __contains__(self, key) -> bool:
        return key in self.raw

    def __iter__(self):
        return iter(self.raw)

    def __len__(self) -> int:
        return len(self.raw)

    def get(self, key, default=None):
        return self.raw.get(key, default)

    def keys(self):
        return self.raw.keys()

    def values(self):
        return self.raw.values()

    def items(self):
        return self.raw.items()

    def to_dict(self) -> dict:
        """The raw JSON payload as a plain dict."""
        return dict(self.raw)


@dataclass
class PredictResult(PayloadView):
    """One prediction response: labels plus optional probabilities."""

    model: str
    labels: list
    classes: list
    probabilities: "np.ndarray | None" = field(default=None)
    raw: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_payload(cls, payload: dict) -> "PredictResult":
        probabilities = payload.get("probabilities")
        return cls(
            model=payload["model"],
            labels=list(payload["labels"]),
            classes=list(payload["classes"]),
            probabilities=(
                np.asarray(probabilities, dtype=float) if probabilities is not None else None
            ),
            raw=payload,
        )


@dataclass
class ModelInfo(PayloadView):
    """One registry entry: identity, schema, and archive provenance.

    ``format_version`` is the persistence format the archive was written
    in — header-only, so operators (and the load generator) can spot stale
    v1 archives without deserialising a single tree.  Listing entries for
    unreadable archives have ``error`` set and every other field defaulted.
    """

    name: str
    model_kind: "str | None" = None
    n_trees: "int | None" = None
    format_version: "int | None" = None
    repro_version: "str | None" = None
    estimator_class: "str | None" = None
    n_features: "int | None" = None
    n_classes: "int | None" = None
    class_labels: "list | None" = None
    engine: "str | None" = None
    loaded: "bool | None" = None
    error: "str | None" = None
    raw: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_payload(cls, payload: dict) -> "ModelInfo":
        return cls(
            name=payload.get("name"),
            model_kind=payload.get("model_kind"),
            n_trees=payload.get("n_trees"),
            format_version=payload.get("format_version"),
            repro_version=payload.get("repro_version"),
            estimator_class=payload.get("estimator_class"),
            n_features=payload.get("n_features"),
            n_classes=payload.get("n_classes"),
            class_labels=payload.get("class_labels"),
            engine=payload.get("engine"),
            loaded=payload.get("loaded"),
            error=payload.get("error"),
            raw=payload,
        )


@dataclass
class MetricsSnapshot(PayloadView):
    """The server's JSON metrics payload with typed top-level access."""

    request_count: int = 0
    predict_requests: int = 0
    rows_total: int = 0
    batch_count: int = 0
    batch_size_histogram: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)
    requests_rejected: int = 0
    rows_rejected: int = 0
    requests_rejected_by_model: dict = field(default_factory=dict)
    requests_abandoned: int = 0
    rows_abandoned: int = 0
    latency_ms: dict = field(default_factory=dict)
    queue: dict = field(default_factory=dict)
    raw: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_payload(cls, payload: dict) -> "MetricsSnapshot":
        names = {name for name in cls.__dataclass_fields__ if name != "raw"}
        typed = {name: payload[name] for name in names if name in payload}
        return cls(raw=payload, **typed)


class ServingClient:
    """Blocking JSON-over-HTTP client for one serving process."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    @classmethod
    def for_targets(cls, targets, *, timeout: float = 30.0) -> "ServingClient":
        """A client for one URL or a list of them, chosen by shape.

        A single URL (or a one-element list) gives a plain
        :class:`ServingClient`; several URLs give a :class:`RouterClient`
        that fails over between them.  Lets the load generator, examples
        and tests target a router, one replica, or a replica set through
        one construction call.
        """
        if isinstance(targets, str):
            return ServingClient(targets, timeout=timeout)
        urls = list(targets)
        if not urls:
            raise ValueError("for_targets needs at least one base URL")
        if len(urls) == 1:
            return ServingClient(urls[0], timeout=timeout)
        return RouterClient(urls, timeout=timeout)

    # -- transport -----------------------------------------------------------

    def _request(
        self,
        path: str,
        body: "dict | None" = None,
        *,
        accept: str = "application/json",
        base_url: "str | None" = None,
        headers: "dict | None" = None,
    ):
        url = f"{base_url if base_url is not None else self.base_url}{path}"
        data = None
        request_headers = {"Accept": accept}
        if headers:
            # Extra request headers — the trace-propagation path
            # (X-Repro-Trace-Id and friends) for the router and loadgen.
            request_headers.update(headers)
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=request_headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
                if accept != "application/json":
                    return raw.decode("utf-8")
                payload = json.loads(raw)
        except urllib.error.HTTPError as exc:
            retry_after = None
            try:
                error_body = json.loads(exc.read())
                message = error_body.get("error", exc.reason)
                retry_after = error_body.get("retry_after_s")
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                message = str(exc.reason)
            if retry_after is None:
                # Fall back to the whole-second header (e.g. a proxy
                # stripped the JSON body but preserved Retry-After).
                retry_after = exc.headers.get("Retry-After") if exc.headers else None
            try:
                # Coerce whatever source supplied it: a non-numeric hint
                # (misbehaving proxy) must degrade to "no hint", never
                # crash the caller's retry loop.
                retry_after = float(retry_after) if retry_after is not None else None
            except (TypeError, ValueError):
                retry_after = None
            raise ServingError(
                f"server returned {exc.code}: {message}",
                status=exc.code,
                retry_after=retry_after,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServingError(f"cannot reach {url}: {exc.reason}") from exc
        except (OSError, http.client.HTTPException) as exc:
            # Connection-level failures (resets, truncated responses) are
            # normal weather under overload; surface them as ServingError
            # (status None) like every other transport problem instead of
            # leaking raw socket exceptions to callers.
            raise ServingError(f"connection to {url} failed: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServingError(f"unexpected response payload from {url}")
        return payload

    def request_json(
        self,
        path: str,
        body: "dict | None" = None,
        *,
        headers: "dict | None" = None,
    ) -> dict:
        """One raw JSON request/response pair against the server.

        ``body=None`` sends a GET, anything else a POST.  This is the
        public escape hatch the router tier forwards traffic through: it
        returns the server's payload verbatim (no typed wrapping), so a
        proxy built on it cannot drop fields it does not know about.
        ``headers`` adds extra request headers (trace propagation).
        """
        return self._request(path, body=body, headers=headers)

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("/healthz")

    def metrics(self) -> MetricsSnapshot:
        """``GET /metrics`` — the JSON snapshot as a typed view."""
        return MetricsSnapshot.from_payload(self._request("/metrics"))

    def metrics_text(self) -> str:
        """``GET /metrics`` with ``Accept: text/plain`` — Prometheus text."""
        return self._request("/metrics", accept="text/plain")

    def models(self) -> "list[ModelInfo]":
        """``GET /v1/models`` — the registry listing, one entry per model."""
        return [
            ModelInfo.from_payload(entry)
            for entry in self._request("/v1/models")["models"]
        ]

    def model(self, name: str) -> ModelInfo:
        """``GET /v1/models/<name>`` — metadata of one model."""
        return ModelInfo.from_payload(self._request(f"/v1/models/{name}"))

    def predict(
        self,
        model: str,
        rows,
        *,
        proba: bool = True,
        retries_429: int = 0,
        retry_max_wait_s: float = 2.0,
        headers: "dict | None" = None,
    ) -> PredictResult:
        """``POST /v1/models/<model>:predict`` for ``rows``.

        ``rows`` is any 2-D array-like (or a single flat row); ``proba``
        controls whether per-class probabilities are included in the
        response.  ``headers`` adds extra request headers — pass a minted
        trace context (``X-Repro-Trace-Id`` etc.) to trace the request
        through the mesh.

        When the server sheds load (429), the request is retried up to
        ``retries_429`` times, sleeping the server's ``retry_after`` hint
        (capped at ``retry_max_wait_s``) between attempts; the default of 0
        surfaces the 429 immediately.  Only 429s are retried — every other
        error status means retrying the identical request cannot help.
        """
        matrix = np.asarray(rows, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1) if matrix.size else matrix.reshape(0, 0)
        body = {"rows": matrix.tolist(), "proba": proba}
        attempts_left = max(0, int(retries_429))
        while True:
            try:
                payload = self._request(
                    f"/v1/models/{model}:predict", body=body, headers=headers
                )
            except ServingError as exc:
                if exc.status != 429 or attempts_left <= 0:
                    raise
                attempts_left -= 1
                hint = exc.retry_after if exc.retry_after is not None else 0.1
                time.sleep(min(max(float(hint), 0.0), retry_max_wait_s))
                continue
            return PredictResult.from_payload(payload)

    def predict_votes(
        self, model: str, rows, *, members=None, headers: "dict | None" = None
    ) -> dict:
        """Per-member vote matrices of a forest's member shard.

        ``POST /v1/models/<model>:predict`` with ``{"votes": true}``;
        ``members`` restricts the computation to those member indices.
        Returns the raw payload — ``votes`` (as a float ndarray of shape
        ``(n_members, n_rows, n_classes)``), ``classes``, ``n_members`` and
        ``n_members_total`` — for a reducer to fold with
        :func:`repro.ensemble.sharding.reduce_votes`.
        """
        matrix = np.asarray(rows, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1) if matrix.size else matrix.reshape(0, 0)
        body: dict = {"rows": matrix.tolist(), "votes": True}
        if members is not None:
            body["members"] = [int(member) for member in members]
        payload = self._request(
            f"/v1/models/{model}:predict", body=body, headers=headers
        )
        payload["votes"] = np.asarray(payload["votes"], dtype=float)
        return payload


class RouterClient(ServingClient):
    """A :class:`ServingClient` that fails over across several base URLs.

    The serving API is identical whether the other end is a single replica
    or a router tier, so the only difference is transport-level: a request
    that cannot *reach* its target (connection refused/reset — a
    :class:`~repro.exceptions.ServingError` with ``status None``) is
    retried on the next URL in the list.  HTTP-status errors (4xx/5xx,
    including 429 shedding) are real answers from a live server and
    propagate immediately.  The most recent working URL is remembered and
    tried first on subsequent requests.
    """

    def __init__(self, base_urls, *, timeout: float = 30.0) -> None:
        urls = [url.rstrip("/") for url in base_urls]
        if not urls:
            raise ValueError("RouterClient needs at least one base URL")
        super().__init__(urls[0], timeout=timeout)
        self.base_urls = urls
        self._active = 0
        self._lock = threading.Lock()

    def _request(
        self,
        path: str,
        body: "dict | None" = None,
        *,
        accept: str = "application/json",
        base_url: "str | None" = None,
        headers: "dict | None" = None,
    ):
        if base_url is not None:
            return super()._request(
                path, body, accept=accept, base_url=base_url, headers=headers
            )
        with self._lock:
            start = self._active
        last_error: "ServingError | None" = None
        for attempt in range(len(self.base_urls)):
            index = (start + attempt) % len(self.base_urls)
            try:
                result = super()._request(
                    path,
                    body,
                    accept=accept,
                    base_url=self.base_urls[index],
                    headers=headers,
                )
            except ServingError as exc:
                if exc.status is not None:
                    raise
                last_error = exc
                continue
            with self._lock:
                self._active = index
            return result
        assert last_error is not None
        raise last_error
