"""Command-line interface for running the paper's experiments.

The CLI mirrors the experiment runners in :mod:`repro.eval.experiment` so a
user can regenerate any of the paper's artefacts without writing code::

    python -m repro example                      # Table 1 / Figs. 2-3 walkthrough
    python -m repro accuracy --dataset Iris      # Table 3 rows for one dataset
    python -m repro noise --dataset Segment      # Fig. 4 curves
    python -m repro efficiency --dataset Glass   # Figs. 6-7 per-algorithm costs
    python -m repro sensitivity --dataset Glass --parameter s   # Fig. 8 / Fig. 9
    python -m repro datasets                     # list the Table 2 stand-ins

Every experiment command accepts ``--scale`` and ``--samples`` to trade
fidelity for speed (the defaults finish in seconds).

Beyond the paper's experiments, the CLI fronts the production side of the
library::

    python -m repro predict model.zip data.csv --proba   # offline scoring
    python -m repro serve --models models/ --port 8000   # HTTP model server
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Sequence

from repro import __version__
from repro.core import AveragingClassifier, UDTClassifier
from repro.core.builder import ENGINE_NAMES
from repro.data import table1_dataset
from repro.eval import (
    AccuracyExperiment,
    EfficiencyExperiment,
    NoiseModelExperiment,
    SensitivityExperiment,
    format_accuracy_results,
    format_efficiency_results,
    format_noise_model_results,
    format_sensitivity_results,
    format_table,
)
from repro.data.uci import TABLE2_DATASETS

__all__ = ["build_parser", "main"]


def _positive_int(value: str) -> int:
    """argparse type for worker counts: an integer of at least 1."""
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Decision Trees for Uncertain Data'.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(
        sub: argparse.ArgumentParser, default_scale: float = 0.25, jobs: bool = True
    ) -> None:
        sub.add_argument("--dataset", default="Iris", help="Table 2 dataset stand-in name")
        sub.add_argument("--scale", type=float, default=default_scale,
                         help="tuple-count scale factor (1.0 = paper-size)")
        sub.add_argument("--samples", type=int, default=30,
                         help="pdf sample count s (paper uses 100)")
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument("--engine", choices=ENGINE_NAMES, default="columnar",
                         help="tree-construction engine (both build identical trees; "
                              "'columnar' is several times faster)")
        if jobs:
            sub.add_argument("--jobs", type=_positive_int, default=1,
                             help="worker count: cross-validation folds run in parallel "
                                  "processes; very large pdf stores additionally build "
                                  "per-attribute split contexts in parallel threads "
                                  "(1 = sequential)")

    subparsers.add_parser("example", help="run the Table 1 handcrafted example")
    subparsers.add_parser("datasets", help="list the Table 2 dataset stand-ins")

    accuracy = subparsers.add_parser("accuracy", help="Table 3: AVG vs UDT accuracy")
    add_common(accuracy)
    accuracy.add_argument("--widths", type=float, nargs="+", default=[0.05, 0.10],
                          help="pdf widths w (fractions of the attribute range)")
    accuracy.add_argument("--error-model", choices=("gaussian", "uniform"), default="gaussian")
    accuracy.add_argument("--folds", type=int, default=3)

    noise = subparsers.add_parser("noise", help="Fig. 4: controlled-noise study")
    add_common(noise, default_scale=0.1)
    noise.add_argument("--perturbations", type=float, nargs="+", default=[0.0, 0.05, 0.10])
    noise.add_argument("--widths", type=float, nargs="+", default=[0.0, 0.05, 0.10, 0.20])

    efficiency = subparsers.add_parser("efficiency", help="Figs. 6-7: per-algorithm cost")
    add_common(efficiency)
    efficiency.add_argument("--width", type=float, default=0.10, help="pdf width w")

    # The sensitivity sweeps time individual sequential builds, so a worker
    # count would either be ignored or corrupt the measurement — no --jobs.
    sensitivity = subparsers.add_parser("sensitivity", help="Figs. 8-9: effect of s or w")
    add_common(sensitivity, jobs=False)
    sensitivity.add_argument("--parameter", choices=("s", "w"), default="s")

    predict = subparsers.add_parser(
        "predict", help="offline scoring: apply a saved model to a CSV of rows"
    )
    predict.add_argument("model", help="path to a model .zip saved with model.save()")
    predict.add_argument("data", help="CSV of feature rows (a non-numeric first row "
                                      "is treated as a header and skipped)")
    predict.add_argument("--proba", action="store_true",
                         help="emit per-class probabilities besides the labels")
    predict.add_argument("--output", default=None,
                         help="write the CSV result here instead of stdout")

    serve = subparsers.add_parser(
        "serve", help="HTTP model server with micro-batched inference"
    )
    serve.add_argument("--models", required=True,
                       help="directory of model .zip archives (file stem = model name)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="listening port (0 binds an ephemeral port)")
    serve.add_argument("--max-batch", type=_positive_int, default=64,
                       help="rows per coalesced predict_batch call")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="how long the coalescer lingers for more requests")
    serve.add_argument("--max-queue-rows", type=int, default=None,
                       help="admission-control bound on queued rows; beyond it new "
                            "requests are rejected with HTTP 429 + Retry-After "
                            "(default: 8 x max-batch)")
    serve.add_argument("--request-timeout", type=float, default=30.0, metavar="SECONDS",
                       help="per-request inference deadline; a request that "
                            "exceeds it is answered 504 and, if still queued, "
                            "cancelled so its rows are never classified")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="shard coalesced batches across N model-serving "
                            "processes (1 = the in-process engine; outputs are "
                            "bit-identical either way)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU prediction-cache entries per model (0 disables)")
    serve.add_argument("--cache-decimals", type=int, default=None,
                       help="round cache keys to this many decimals instead of "
                            "exact feature bytes (absorbs sub-ulp client jitter)")
    serve.add_argument("--predict-engine", choices=("columnar", "tuples"),
                       default="columnar",
                       help="batch classification path ('tuples' walks the tree "
                            "per row; only useful for benchmarking)")
    serve.add_argument("--preload", action="store_true",
                       help="load every model at startup instead of on first request")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    return parser


def _read_csv_rows(path: str) -> list:
    """Feature rows of a CSV file; a non-numeric first row is a header."""
    with open(path, newline="") as handle:
        rows = [row for row in csv.reader(handle) if row]
    if not rows:
        return []

    def numeric(row: list) -> bool:
        try:
            [float(cell) for cell in row]
            return True
        except ValueError:
            return False

    if not numeric(rows[0]):
        rows = rows[1:]
    return [[float(cell) for cell in row] for row in rows]


def _run_predict(args) -> int:
    import numpy as np

    from repro.api import load_model
    from repro.api.spec import first_non_finite_row

    model = load_model(args.model)
    try:
        rows = _read_csv_rows(args.data)
    except ValueError as exc:
        print(f"error: {args.data} contains a non-numeric cell: {exc}", file=sys.stderr)
        return 2
    classes = [
        label.item() if hasattr(label, "item") else label for label in model.classes_
    ]
    n_features = len(model.feature_names_in_)
    widths = {len(row) for row in rows}
    if widths and widths != {n_features}:
        print(
            f"error: {args.data} has rows of {sorted(widths)} columns but the "
            f"model expects exactly {n_features} features per row",
            file=sys.stderr,
        )
        return 2
    matrix = np.asarray(rows, dtype=float).reshape(-1, n_features)
    bad_row = first_non_finite_row(matrix)
    if bad_row is not None:
        # Same rule the server enforces before enqueueing: NaN/Inf features
        # would silently turn into garbage probabilities.
        print(
            f"error: {args.data} contains a non-finite feature value (NaN or "
            f"Inf) in data row {bad_row + 1}; clean the input before scoring",
            file=sys.stderr,
        )
        return 2
    probabilities = model.predict_proba(matrix)
    labels = [classes[index] for index in np.argmax(probabilities, axis=1)]

    handle = open(args.output, "w", newline="") if args.output else sys.stdout
    try:
        writer = csv.writer(handle)
        if args.proba:
            writer.writerow(["label"] + [f"p_{label}" for label in classes])
            for label, distribution in zip(labels, probabilities):
                writer.writerow([label] + [repr(float(p)) for p in distribution])
        else:
            writer.writerow(["label"])
            for label in labels:
                writer.writerow([label])
    finally:
        if args.output:
            handle.close()
    return 0


def _run_serve(args) -> int:
    from repro.exceptions import ServingError
    from repro.serve import create_server

    try:
        server = create_server(
            args.models,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue_rows=args.max_queue_rows,
            cache_size=args.cache_size,
            cache_decimals=args.cache_decimals,
            predict_engine=args.predict_engine,
            request_timeout_s=args.request_timeout,
            workers=args.workers,
            preload=args.preload,
            verbose=args.verbose,
        )
    except ServingError as exc:
        # Bad knob values (request-timeout <= 0, negative cache sizes, a
        # missing model directory, ...) must fail loudly at startup, not
        # start a server that 504s or crashes on its first request.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    names = server.registry.names()
    print(f"serving {len(names)} model(s) on {server.url}", flush=True)
    for name in names:
        print(f"  - {name}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _run_example() -> None:
    data = table1_dataset()
    avg = AveragingClassifier().fit(data)
    udt = UDTClassifier(strategy="UDT", post_prune=False, min_split_weight=1e-6).fit(data)
    print("Table 1 example — accuracy on the six training tuples")
    print(format_table(
        ("classifier", "accuracy", "paper"),
        [("AVG", f"{avg.score(data):.4f}", "2/3"), ("UDT", f"{udt.score(data):.4f}", "1.0")],
    ))
    print("\nDistribution-based tree:")
    print(udt.tree_.to_text())


def _run_datasets() -> None:
    rows = [
        (
            spec.name,
            spec.n_training,
            spec.n_test if spec.has_test_split else "-",
            spec.n_attributes,
            spec.n_classes,
            "raw samples" if spec.repeated_measurements else
            ("integer" if spec.integer_domain else "real"),
        )
        for spec in TABLE2_DATASETS
    ]
    print(format_table(("dataset", "train", "test", "attributes", "classes", "domain"), rows))


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro``."""
    args = build_parser().parse_args(argv)

    if args.command == "example":
        _run_example()
    elif args.command == "datasets":
        _run_datasets()
    elif args.command == "predict":
        return _run_predict(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "accuracy":
        experiment = AccuracyExperiment(
            args.dataset, scale=args.scale, n_samples=args.samples,
            n_folds=args.folds, seed=args.seed, n_jobs=args.jobs, engine=args.engine,
        )
        results = experiment.run(
            width_fractions=tuple(args.widths), error_models=(args.error_model,)
        )
        print(format_accuracy_results(results))
    elif args.command == "noise":
        experiment = NoiseModelExperiment(
            args.dataset, scale=args.scale, n_samples=args.samples, n_folds=3,
            seed=args.seed, n_jobs=args.jobs, engine=args.engine,
        )
        results = experiment.run(
            perturbation_fractions=tuple(args.perturbations),
            width_fractions=tuple(args.widths),
        )
        print(format_noise_model_results(results))
    elif args.command == "efficiency":
        experiment = EfficiencyExperiment(
            args.dataset, scale=args.scale, n_samples=args.samples,
            width_fraction=args.width, seed=args.seed, n_jobs=args.jobs,
            engine=args.engine,
        )
        print(format_efficiency_results(experiment.run()))
    elif args.command == "sensitivity":
        experiment = SensitivityExperiment(
            args.dataset, scale=args.scale, seed=args.seed, engine=args.engine,
        )
        if args.parameter == "s":
            results = experiment.sweep_samples(sample_counts=(25, 50, 75, 100))
        else:
            results = experiment.sweep_widths(width_fractions=(0.02, 0.05, 0.10, 0.20),
                                              n_samples=args.samples)
        print(format_sensitivity_results(results))
    return 0
