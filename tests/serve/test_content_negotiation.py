"""``GET /metrics`` content negotiation and the typed client results.

The default (no ``Accept``, or JSON preferred) must keep serving the
legacy JSON snapshot **byte-for-byte**, while ``Accept: text/plain``
switches the same endpoint to Prometheus text exposition.  The typed
client dataclasses must stay drop-in replacements for the plain dicts
the client used to return.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.serve import MetricsSnapshot, ModelInfo, ServingClient, create_server
from repro.serve.http import negotiate_metrics_format
from repro.serve.metrics import PROMETHEUS_CONTENT_TYPE

from test_serving_metrics import parse_exposition

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"


@pytest.fixture
def server(model_dir):
    server = create_server(model_dir, port=0, max_batch=16, max_wait_ms=1.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=5.0)


@pytest.fixture
def client(server):
    return ServingClient(server.url)


def _get(url: str, accept: "str | None" = None):
    headers = {"Accept": accept} if accept is not None else {}
    request = urllib.request.Request(url, headers=headers)
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestNegotiation:
    """The header-parsing rules, independent of any server."""

    @pytest.mark.parametrize("accept", [
        None, "", "application/json", "application/*", "*/*",
        "text/html", "text/plain;q=0.5, application/json",
        "text/plain;q=0.5, application/json;q=0.5",  # tie -> JSON default
    ])
    def test_json_wins(self, accept):
        assert negotiate_metrics_format(accept) == "json"

    @pytest.mark.parametrize("accept", [
        "text/plain", "text/*", "text/plain; version=0.0.4",
        "application/openmetrics-text",
        "text/plain, application/json;q=0.9",
        "application/json;q=0.1, text/plain;q=0.8",
    ])
    def test_prometheus_wins(self, accept):
        assert negotiate_metrics_format(accept) == "prometheus"

    def test_zero_quality_disables_a_type(self):
        assert negotiate_metrics_format("application/json;q=0, text/plain") == "prometheus"

    def test_garbage_header_falls_back_to_json(self):
        assert negotiate_metrics_format(";;;=,,q=x") == "json"


class TestMetricsEndpoint:
    def test_default_json_is_byte_identical_to_snapshot(self, server, client):
        client.predict("demo", [[0.1, 0.2, 0.3]])
        status, content_type, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert content_type == "application/json"
        # The GET above was counted before rendering and no traffic runs
        # after it, so the live snapshot must reproduce the response
        # byte-for-byte (the server serialises with plain json.dumps too).
        from repro.serve.http import _jsonable

        expected = json.dumps(_jsonable(server.metrics.snapshot())).encode()
        assert body == expected

    def test_accept_text_plain_serves_prometheus(self, server, client):
        client.predict("demo", [[0.1, 0.2, 0.3]])
        status, content_type, body = _get(f"{server.url}/metrics", accept="text/plain")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        families = parse_exposition(body.decode("utf-8"))
        rows = families["repro_predict_rows_total"]["samples"]
        assert (("repro_predict_rows_total", {"model": "demo"}, 1.0)) in rows
        assert families["repro_pool_workers"]["type"] == "gauge"

    def test_explicit_json_preference_stays_json(self, server):
        status, content_type, body = _get(
            f"{server.url}/metrics", accept="text/plain;q=0.5, application/json"
        )
        assert status == 200
        assert content_type == "application/json"
        json.loads(body)

    def test_client_metrics_text_helper(self, client):
        text = client.metrics_text()
        assert text.startswith("# HELP ")
        parse_exposition(text)


class TestTypedClientResults:
    def test_predict_result_attribute_and_dict_access(self, client):
        result = client.predict("demo", [[0.1, 0.2, 0.3]])
        assert result.model == "demo"
        assert result.labels == result["labels"]
        assert result.probabilities.shape == (1, 2)
        assert set(result.keys()) >= {"model", "labels", "classes"}
        assert result.to_dict()["model"] == "demo"

    def test_metrics_snapshot_typed_and_dict_access(self, client):
        client.predict("demo", [[0.1, 0.2, 0.3]])
        snap = client.metrics()
        assert isinstance(snap, MetricsSnapshot)
        assert snap.predict_requests == snap["predict_requests"] == 1
        assert snap.latency_ms["count"] == 1
        assert "queue" in snap
        assert len(snap) == len(snap.raw)

    def test_model_info_exposes_format_version(self, client):
        from repro.api import FORMAT_VERSION

        info = client.models()[0]
        assert isinstance(info, ModelInfo)
        assert info.format_version == FORMAT_VERSION
        assert info.model_kind == "tree"
        assert info["format_version"] == FORMAT_VERSION
        assert info.get("missing-key") is None

    def test_model_info_reads_stale_v1_archive_version(self, tmp_path):
        """The golden v1 fixture must surface format_version=1 end to end."""
        import shutil

        golden = FIXTURES / "golden_v1_model.zip"
        shutil.copy(golden, tmp_path / "legacy.zip")
        server = create_server(tmp_path, port=0, max_batch=16, max_wait_ms=1.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            info = ServingClient(server.url).model("legacy")
            assert info.format_version == 1
            assert info.name == "legacy"
        finally:
            server.close()
            thread.join(timeout=5.0)
