"""Unit tests for the high-level classifiers (UDTClassifier, AveragingClassifier)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AveragingClassifier, SampledPdf, UDTClassifier, UncertainTuple
from repro.data import inject_uncertainty, table1_dataset
from repro.exceptions import TreeError


class TestUDTClassifier:
    def test_predict_before_fit_raises(self, small_uncertain):
        model = UDTClassifier()
        with pytest.raises(TreeError):
            model.predict(small_uncertain)
        with pytest.raises(TreeError):
            model.predict_proba(small_uncertain)
        with pytest.raises(TreeError):
            model.score(small_uncertain)

    def test_fit_returns_self_and_populates_artifacts(self, small_uncertain):
        model = UDTClassifier(strategy="UDT-GP")
        assert model.fit(small_uncertain) is model
        assert model.tree_ is not None
        assert model.build_stats_ is not None
        assert model.strategy_name == "UDT-GP"

    def test_predict_single_tuple_and_dataset(self, small_uncertain):
        model = UDTClassifier().fit(small_uncertain)
        single = model.predict(small_uncertain.tuples[0])
        assert single in small_uncertain.class_labels
        batch = model.predict(small_uncertain)
        assert isinstance(batch, np.ndarray)
        assert batch.shape == (len(small_uncertain),)

    def test_fit_populates_sklearn_attributes(self, small_uncertain):
        model = UDTClassifier().fit(small_uncertain)
        assert list(model.classes_) == list(small_uncertain.class_labels)
        assert model.n_features_in_ == small_uncertain.n_attributes
        assert len(model.feature_extents_) == small_uncertain.n_attributes

    def test_get_set_params_round_trip(self):
        model = UDTClassifier(strategy="UDT-GP", max_depth=4)
        params = model.get_params()
        assert params["strategy"] == "UDT-GP"
        assert params["max_depth"] == 4
        model.set_params(strategy="UDT-LP", n_jobs=2)
        assert model.strategy == "UDT-LP"
        assert model.n_jobs == 2
        with pytest.raises(ValueError):
            model.set_params(bogus=1)

    def test_predict_proba_shapes(self, small_uncertain):
        model = UDTClassifier().fit(small_uncertain)
        single = model.predict_proba(small_uncertain.tuples[0])
        assert single.shape == (small_uncertain.n_classes,)
        assert single.sum() == pytest.approx(1.0)
        matrix = model.predict_proba(small_uncertain)
        assert matrix.shape == (len(small_uncertain), small_uncertain.n_classes)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_score_on_separable_data_is_high(self, small_uncertain):
        model = UDTClassifier().fit(small_uncertain)
        assert model.score(small_uncertain) > 0.9

    def test_classification_result_is_probabilistic(self):
        """A test pdf straddling the learned split yields a mixed distribution."""
        data = table1_dataset()
        model = UDTClassifier(strategy="UDT", post_prune=False, min_split_weight=1e-6).fit(data)
        straddling = UncertainTuple([SampledPdf([-9.0, 6.0], [0.5, 0.5])])
        probabilities = model.predict_proba(straddling)
        assert 0.0 < probabilities.max() < 1.0


class TestAveragingClassifier:
    def test_predict_before_fit_raises(self, small_uncertain):
        model = AveragingClassifier()
        with pytest.raises(TreeError):
            model.predict(small_uncertain)
        with pytest.raises(TreeError):
            model.score(small_uncertain)

    def test_training_uses_means_only(self, small_uncertain):
        model = AveragingClassifier().fit(small_uncertain)
        # The training pdfs have ~12 samples each, but the fitted tree was
        # built from point data: every candidate count equals the tuple count.
        stats = model.build_stats_
        assert stats is not None
        assert stats.split_search.candidate_split_points < sum(
            item.pdf(0).n_samples for item in small_uncertain
        )

    def test_predict_collapses_test_tuples_to_means(self):
        data = table1_dataset()
        model = AveragingClassifier().fit(data)
        # A tuple with an extreme distribution but mean -2 is treated as -2.
        extreme = UncertainTuple([SampledPdf([-100.0, 96.0], [0.5, 0.5])])
        point = UncertainTuple([SampledPdf.point(-2.0)])
        assert model.predict(extreme) == model.predict(point)

    def test_predict_proba_shapes(self, small_uncertain):
        model = AveragingClassifier().fit(small_uncertain)
        matrix = model.predict_proba(small_uncertain)
        assert matrix.shape == (len(small_uncertain), small_uncertain.n_classes)
        single = model.predict_proba(small_uncertain.tuples[0])
        assert single.sum() == pytest.approx(1.0)

    def test_score_on_separable_data_is_high(self, small_uncertain):
        assert AveragingClassifier().fit(small_uncertain).score(small_uncertain) > 0.9


class TestAveragingVersusUDT:
    def test_identical_on_point_data(self, two_class_points):
        """With no uncertainty, AVG and UDT are the same algorithm."""
        avg = AveragingClassifier().fit(two_class_points)
        udt = UDTClassifier(strategy="UDT").fit(two_class_points)
        assert np.array_equal(avg.predict(two_class_points), udt.predict(two_class_points))

    def test_udt_accuracy_at_least_avg_on_table1(self):
        data = table1_dataset()
        avg = AveragingClassifier().fit(data)
        udt = UDTClassifier(strategy="UDT", post_prune=False, min_split_weight=1e-6).fit(data)
        assert udt.score(data) >= avg.score(data)

    def test_udt_uses_distribution_information(self, two_class_points):
        """UDT sees many more candidate split points than AVG on uncertain data."""
        uncertain = inject_uncertainty(
            two_class_points, width_fraction=0.2, n_samples=15, error_model="gaussian"
        )
        avg = AveragingClassifier().fit(uncertain)
        udt = UDTClassifier(strategy="UDT").fit(uncertain)
        assert (
            udt.build_stats_.split_search.candidate_split_points
            > avg.build_stats_.split_search.candidate_split_points
        )
