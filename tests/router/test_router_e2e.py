"""End-to-end property: routing never changes answers.

The tentpole guarantees of the router tier, demonstrated on live replica
subprocesses-in-threads:

* predictions through the router — including forest fan-out, where member
  shards are computed on different replicas and soft-vote-reduced at the
  router — are **bit-identical** to a single replica and to the offline
  model;
* killing one of N replicas mid-run yields at worst transient 503s, never
  a wrong answer, and the ring re-converges within one health-check
  interval.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.loadgen import LoadGenerator
from repro.loadgen.shapes import make_shape
from repro.serve import RouterClient, ServingClient


def test_router_predictions_bit_identical_to_direct_and_offline(
    router_server, replica_servers, router_forest, router_tree, router_rows
):
    through_router = ServingClient(router_server.url)
    direct = ServingClient(replica_servers[0].url)

    routed = through_router.predict("forest", router_rows)
    assert router_server.router.metrics.snapshot()["fanout"]["requests"] == 1
    served = direct.predict("forest", router_rows)
    offline = router_forest.predict_proba(router_rows)
    assert routed.labels == served.labels
    assert np.array_equal(routed.probabilities, served.probabilities)
    assert np.array_equal(routed.probabilities, offline)
    assert routed.classes == served.classes

    routed_tree = through_router.predict("tree", router_rows)
    served_tree = direct.predict("tree", router_rows)
    assert routed_tree.labels == served_tree.labels
    assert np.array_equal(routed_tree.probabilities, served_tree.probabilities)
    assert np.array_equal(
        routed_tree.probabilities, router_tree.predict_proba(router_rows)
    )


def test_fanout_matches_without_proba_and_single_row(router_server, replica_servers,
                                                     router_rows):
    through_router = ServingClient(router_server.url)
    direct = ServingClient(replica_servers[1].url)
    routed = through_router.predict("forest", router_rows[0], proba=False)
    served = direct.predict("forest", router_rows[0], proba=False)
    assert routed.labels == served.labels
    assert routed.probabilities is None


def test_killing_a_replica_keeps_answers_right_and_ring_reconverges(
    router_server, replica_servers, router_forest, router_rows
):
    client = ServingClient(router_server.url)
    expected_proba = router_forest.predict_proba(router_rows)
    expected = ServingClient(replica_servers[0].url).predict("forest", router_rows)
    assert np.array_equal(expected.probabilities, expected_proba)

    victim = replica_servers[0]
    transient = 0
    served = 0
    for round_index in range(30):
        if round_index == 5:
            victim.close()  # kill one of the two replicas mid-run
        try:
            result = client.predict("forest", router_rows)
        except ServingError as exc:
            # The only acceptable failure is unavailability, never a wrong
            # or malformed answer.
            assert exc.status in (503, None), exc
            transient += 1
            continue
        served += 1
        assert result.labels == expected.labels
        assert np.array_equal(result.probabilities, expected_proba)
    assert served >= 20  # the survivor carried the load

    # The ring drops the dead replica within one health-check interval
    # (interval 0.2s, down_after=1) — passive failures usually beat the
    # prober to it.
    deadline = time.monotonic() + 5 * router_server.router.health.interval_s
    while time.monotonic() < deadline:
        if router_server.router.describe()["ring_members"] == [replica_servers[1].url]:
            break
        time.sleep(0.05)
    assert router_server.router.describe()["ring_members"] == [replica_servers[1].url]

    # With the ring converged on the survivor there are no shards to fan
    # out to, and answers are still bit-identical.
    result = client.predict("forest", router_rows)
    assert np.array_equal(result.probabilities, expected_proba)


def test_router_client_fails_over_across_replicas(replica_servers, router_rows):
    dead = "http://127.0.0.1:1"
    client = RouterClient([dead, replica_servers[0].url])
    result = client.predict("forest", router_rows[:2])
    assert len(result.labels) == 2
    # The working URL is remembered; a later call does not retry the dead one.
    assert client.base_urls[client._active] == replica_servers[0].url


def test_loadgen_discovers_and_drives_through_the_router(router_server):
    generator = LoadGenerator(router_server.url, users=2, timeout_s=10.0, seed=0)
    names, n_features = generator.discover_models()
    assert names == ["forest", "tree"]
    assert n_features == {"forest": 3, "tree": 3}
    run = generator.run(make_shape("steady"), rate=20.0, duration_s=0.5)
    assert run.offered > 0
    assert all(record.status == 200 for record in run.records)


def test_loadgen_accepts_a_target_list(replica_servers):
    generator = LoadGenerator(
        ["http://127.0.0.1:1", replica_servers[0].url], users=2, timeout_s=10.0, seed=0
    )
    names, _ = generator.discover_models()
    assert names == ["forest", "tree"]


def test_drain_waits_for_inflight_and_sheds_to_survivor(
    router_server, replica_servers, router_rows, router_forest
):
    client = ServingClient(router_server.url)
    client.predict("tree", router_rows)  # warm both replicas' registries
    report = router_server.router.drain(replica_servers[0].url, timeout_s=5.0)
    assert report["drained"] is True
    # Traffic keeps flowing, bit-identically, on the remaining replica.
    result = client.predict("forest", router_rows)
    assert np.array_equal(result.probabilities, router_forest.predict_proba(router_rows))
    snapshot = router_server.router.metrics.snapshot()
    survivor = replica_servers[1].url
    assert snapshot["routed"].get(survivor, 0) >= 1


def test_votes_requests_route_without_fanning_out(router_server, router_forest,
                                                  router_rows):
    client = ServingClient(router_server.url)
    before = router_server.router.metrics.snapshot()["fanout"]["requests"]
    payload = client.predict_votes("forest", router_rows, members=[1, 3])
    assert payload["n_members"] == 2
    assert payload["n_members_total"] == 6
    assert payload["votes"].shape == (2, len(router_rows), 2)
    after = router_server.router.metrics.snapshot()["fanout"]["requests"]
    assert after == before  # a votes request is already a shard; no re-fan-out


@pytest.mark.parametrize("bad_body,expected", [
    ({"rows": "nope"}, 400),
    ({}, 400),
])
def test_replica_side_validation_errors_propagate(router_server, bad_body, expected):
    client = ServingClient(router_server.url)
    with pytest.raises(ServingError) as error:
        client.request_json("/v1/models/forest:predict", bad_body)
    assert error.value.status == expected
