"""Traffic shapes: time-varying arrival rates and model-selection skew.

A :class:`TrafficShape` describes *when* requests arrive and *which model*
each one targets, independently of how fast the server answers — the
open-loop half of the harness.  Two hooks:

* :meth:`TrafficShape.rate_multiplier` — the instantaneous arrival-rate
  multiplier at a fraction ``t`` of the run (``0.0 <= t < 1.0``), applied
  to the configured base rate.  ``steady`` is the constant 1; ``spike``
  multiplies a window in the middle of the run; ``diurnal`` follows one
  (or more) sinusoidal day-cycles compressed into the run.
* :meth:`TrafficShape.pick_model` — which registered model a request
  targets.  Uniform by default; ``hotkey`` skews a configurable share of
  the traffic onto the first (hottest) model, the serving-side analogue
  of a hot partition key.

Shapes that change *what* the traffic looks like over the run get two
further hooks: :meth:`TrafficShape.pick_model_at` (time-aware model
selection, defaults to :meth:`~TrafficShape.pick_model`) and
:meth:`TrafficShape.feature_shift` (an additive offset applied to the
generated feature rows, default 0).  ``drift`` uses both to migrate the
request population mid-run — the workload a streaming trainer
(:mod:`repro.stream`) exists to keep up with.

:func:`arrival_times` turns a shape plus a base rate and duration into the
explicit arrival schedule: a non-homogeneous Poisson process (thinning)
by default, or the deterministic equal-expectation schedule for
reproducible tests.  Everything is driven by a caller-supplied
:class:`numpy.random.Generator`, so a seed fixes the whole workload.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SHAPE_NAMES",
    "DiurnalShape",
    "DriftShape",
    "HotKeyShape",
    "SpikeShape",
    "SteadyShape",
    "TrafficShape",
    "arrival_times",
    "make_shape",
]


class TrafficShape:
    """Base shape: steady unit rate, uniform model selection."""

    name = "traffic"

    def rate_multiplier(self, t: float) -> float:
        """Arrival-rate multiplier at run fraction ``t`` (``0 <= t < 1``)."""
        return 1.0

    def pick_model(self, rng: np.random.Generator, models: "list[str]") -> str:
        """The model one request targets (uniform by default)."""
        if not models:
            raise ValueError("no models to pick from")
        if len(models) == 1:
            return models[0]
        return models[int(rng.integers(len(models)))]

    def pick_model_at(
        self, rng: np.random.Generator, models: "list[str]", t: float
    ) -> str:
        """Time-aware model selection at run fraction ``t``.

        The default ignores ``t`` and delegates to :meth:`pick_model`, so
        time-invariant shapes keep drawing the exact same rng sequence.
        """
        return self.pick_model(rng, models)

    def feature_shift(self, t: float) -> float:
        """Additive offset applied to feature rows at run fraction ``t``."""
        return 0.0

    def describe(self) -> dict:
        """Shape parameters for the benchmark record."""
        return {"shape": self.name}


class SteadyShape(TrafficShape):
    """Constant arrival rate for the whole run."""

    name = "steady"


class SpikeShape(TrafficShape):
    """Baseline rate with a multiplicative burst in a mid-run window.

    The default quadruples the arrival rate over the middle fifth of the
    run — long enough to fill the admission queue, short enough that the
    surrounding baseline shows the recovery.
    """

    name = "spike"

    def __init__(
        self, factor: float = 4.0, start: float = 0.4, end: float = 0.6
    ) -> None:
        if factor < 1.0:
            raise ValueError(f"spike factor must be >= 1, got {factor}")
        if not 0.0 <= start < end <= 1.0:
            raise ValueError(f"spike window must satisfy 0 <= start < end <= 1, "
                             f"got [{start}, {end}]")
        self.factor = float(factor)
        self.start = float(start)
        self.end = float(end)

    def rate_multiplier(self, t: float) -> float:
        return self.factor if self.start <= t < self.end else 1.0

    def describe(self) -> dict:
        return {
            "shape": self.name,
            "spike_factor": self.factor,
            "spike_window": [self.start, self.end],
        }


class DiurnalShape(TrafficShape):
    """Sinusoidal day-cycle compressed into the run: trough, peak, trough.

    ``amplitude`` is the peak-to-mean swing as a fraction of the base rate
    (0.8 means the rate sweeps between 0.2x and 1.8x); ``cycles`` stacks
    several compressed days into one run.  The multiplier starts at the
    trough, so short smoke runs exercise both the ramp-up and the peak.
    """

    name = "diurnal"

    def __init__(self, amplitude: float = 0.8, cycles: float = 1.0) -> None:
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"diurnal amplitude must be in [0, 1], got {amplitude}")
        if cycles <= 0:
            raise ValueError(f"diurnal cycles must be positive, got {cycles}")
        self.amplitude = float(amplitude)
        self.cycles = float(cycles)

    def rate_multiplier(self, t: float) -> float:
        # -cos starts the cycle at the trough and peaks mid-cycle.
        return 1.0 - self.amplitude * float(np.cos(2.0 * np.pi * self.cycles * t))

    def describe(self) -> dict:
        return {"shape": self.name, "amplitude": self.amplitude, "cycles": self.cycles}


class HotKeyShape(TrafficShape):
    """Steady rate with model selection skewed onto one hot model.

    ``hot_share`` of the requests target the first model of the registry
    listing; the rest spread uniformly over the remaining models.  With a
    single registered model every request targets it (the skew is then a
    no-op, which is exactly what a one-model smoke deployment wants).
    Exercises the per-model admission quota: the hot model should 429
    against its own budget while the cold models keep being admitted.
    """

    name = "hotkey"

    def __init__(self, hot_share: float = 0.8) -> None:
        if not 0.0 < hot_share <= 1.0:
            raise ValueError(f"hot_share must be in (0, 1], got {hot_share}")
        self.hot_share = float(hot_share)

    def pick_model(self, rng: np.random.Generator, models: "list[str]") -> str:
        if not models:
            raise ValueError("no models to pick from")
        if len(models) == 1 or rng.random() < self.hot_share:
            return models[0]
        return models[1 + int(rng.integers(len(models) - 1))]

    def describe(self) -> dict:
        return {"shape": self.name, "hot_share": self.hot_share}


class DriftShape(TrafficShape):
    """Steady rate with the request *population* migrating mid-run.

    Over a linear ramp between run fractions ``start`` and ``end`` the
    preferred model moves from the first registered model to the last,
    and the generated feature rows pick up an additive offset growing to
    ``magnitude`` — so both the label mix (which model answers) and the
    input distribution shift, the workload a streaming trainer exists to
    keep up with.  ``hot_share`` of the requests follow the preference;
    the rest stay uniform, keeping every model warm throughout.
    """

    name = "drift"

    def __init__(
        self,
        start: float = 0.4,
        end: float = 0.6,
        magnitude: float = 2.0,
        hot_share: float = 0.8,
    ) -> None:
        if not 0.0 <= start < end <= 1.0:
            raise ValueError(f"drift window must satisfy 0 <= start < end <= 1, "
                             f"got [{start}, {end}]")
        if magnitude < 0:
            raise ValueError(f"drift magnitude must be >= 0, got {magnitude}")
        if not 0.0 < hot_share <= 1.0:
            raise ValueError(f"hot_share must be in (0, 1], got {hot_share}")
        self.start = float(start)
        self.end = float(end)
        self.magnitude = float(magnitude)
        self.hot_share = float(hot_share)

    def phase(self, t: float) -> float:
        """How far the drift has progressed at ``t``: 0 before, 1 after."""
        if t <= self.start:
            return 0.0
        if t >= self.end:
            return 1.0
        return (t - self.start) / (self.end - self.start)

    def pick_model_at(
        self, rng: np.random.Generator, models: "list[str]", t: float
    ) -> str:
        if not models:
            raise ValueError("no models to pick from")
        if len(models) == 1:
            return models[0]
        # Preference migrates from the first model to the last as the
        # drift progresses; each request re-draws, so mid-ramp traffic is
        # a blend rather than a hard cutover.
        preferred = models[-1] if rng.random() < self.phase(t) else models[0]
        if rng.random() < self.hot_share:
            return preferred
        return models[int(rng.integers(len(models)))]

    def pick_model(self, rng: np.random.Generator, models: "list[str]") -> str:
        return self.pick_model_at(rng, models, 0.0)

    def feature_shift(self, t: float) -> float:
        return self.magnitude * self.phase(t)

    def describe(self) -> dict:
        return {
            "shape": self.name,
            "drift_window": [self.start, self.end],
            "magnitude": self.magnitude,
            "hot_share": self.hot_share,
        }


_SHAPES = {
    SteadyShape.name: SteadyShape,
    SpikeShape.name: SpikeShape,
    DiurnalShape.name: DiurnalShape,
    HotKeyShape.name: HotKeyShape,
    DriftShape.name: DriftShape,
}

#: Names accepted by :func:`make_shape` and ``repro loadgen --shape``.
SHAPE_NAMES = tuple(sorted(_SHAPES))


def make_shape(name: str, **parameters) -> TrafficShape:
    """Instantiate a shape by name (``steady``/``spike``/``diurnal``/``hotkey``/``drift``)."""
    shape_class = _SHAPES.get(name)
    if shape_class is None:
        raise ValueError(f"unknown traffic shape {name!r}; expected one of {SHAPE_NAMES}")
    return shape_class(**parameters)


def arrival_times(
    shape: TrafficShape,
    rate: float,
    duration_s: float,
    rng: "np.random.Generator | None" = None,
    *,
    poisson: bool = True,
) -> np.ndarray:
    """Sorted arrival offsets (seconds) in ``[0, duration_s)`` for a shape.

    ``rate`` is the base arrivals-per-second the shape's multiplier scales.
    With ``poisson=True`` (the default) arrivals follow a non-homogeneous
    Poisson process, sampled by thinning a homogeneous process at the
    shape's peak rate — the standard open-loop traffic model, with the
    bursts and gaps real arrivals have.  ``poisson=False`` spaces arrivals
    so every one carries the same expected load (the quantiles of the
    cumulative rate curve): deterministic, which is what schedule-shape
    tests want.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    # The shapes' multipliers are piecewise-smooth; a fine grid bounds the
    # peak tightly enough for thinning and integrates exactly enough for
    # the deterministic schedule.
    grid = np.linspace(0.0, 1.0, 2049)
    multipliers = np.asarray([shape.rate_multiplier(float(t)) for t in grid])
    if np.any(multipliers < 0):
        raise ValueError(f"shape {shape.name!r} produced a negative rate multiplier")
    if not poisson:
        # Inverse of the cumulative expected-arrivals curve: arrival k sits
        # where the integral of the rate reaches k + 0.5 (midpoint rule
        # keeps the first arrival off t=0 and the last inside the run).
        cumulative = np.concatenate(
            ([0.0], np.cumsum((multipliers[1:] + multipliers[:-1]) / 2.0 * np.diff(grid)))
        )
        n_arrivals = int(cumulative[-1] * rate * duration_s)
        if n_arrivals == 0:
            return np.zeros(0)
        # Arrival k sits where the cumulative expected-arrival count
        # (rate * duration_s * cumulative) reaches k + 0.5, i.e. where the
        # unit-domain integral reaches (k + 0.5) / (rate * duration_s).
        targets = (np.arange(n_arrivals) + 0.5) / (rate * duration_s)
        positions = np.interp(targets, cumulative, grid)
        return positions * duration_s
    rng = rng if rng is not None else np.random.default_rng()
    peak = float(multipliers.max())
    if peak == 0.0:
        return np.zeros(0)
    # Thinning: draw a homogeneous Poisson process at the peak rate, keep
    # each arrival with probability rate(t)/peak.
    expected = rate * peak * duration_s
    n_candidates = int(rng.poisson(expected))
    candidates = np.sort(rng.uniform(0.0, duration_s, size=n_candidates))
    keep = np.asarray(
        [rng.random() < shape.rate_multiplier(t / duration_s) / peak for t in candidates]
    )
    return candidates[keep] if len(candidates) else candidates
