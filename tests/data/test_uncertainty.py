"""Unit tests for :mod:`repro.data.uncertainty` (error models, perturbation, Eq. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Attribute, CategoricalDistribution, SampledPdf, UncertainDataset, UncertainTuple
from repro.data.uncertainty import (
    ERROR_MODELS,
    attribute_ranges,
    inject_uncertainty,
    model_width_for_perturbation,
    perturb_points,
    repeated_measurement_pdfs,
)
from repro.exceptions import DatasetError


@pytest.fixture
def point_data() -> UncertainDataset:
    values = np.array([[0.0, 10.0], [1.0, 20.0], [2.0, 30.0], [3.0, 40.0]])
    return UncertainDataset.from_points(values, ["a", "a", "b", "b"])


class TestAttributeRanges:
    def test_ranges_use_means(self, point_data):
        assert attribute_ranges(point_data) == pytest.approx([3.0, 30.0])

    def test_categorical_attributes_get_zero_width(self):
        attrs = [Attribute.numerical("x"), Attribute.categorical("c", ("u", "v"))]
        tuples = [
            UncertainTuple([SampledPdf.point(0.0), CategoricalDistribution.certain("u")], "a"),
            UncertainTuple([SampledPdf.point(4.0), CategoricalDistribution.certain("v")], "b"),
        ]
        data = UncertainDataset(attrs, tuples)
        assert attribute_ranges(data) == pytest.approx([4.0, 0.0])

    def test_empty_dataset_raises(self):
        data = UncertainDataset([Attribute.numerical("x")], [], class_labels=("a",))
        with pytest.raises(DatasetError):
            attribute_ranges(data)


class TestInjectUncertainty:
    def test_error_models_registry(self):
        assert set(ERROR_MODELS) == {"gaussian", "uniform"}

    def test_unknown_model_rejected(self, point_data):
        with pytest.raises(DatasetError):
            inject_uncertainty(point_data, width_fraction=0.1, error_model="weird")

    def test_invalid_parameters_rejected(self, point_data):
        with pytest.raises(DatasetError):
            inject_uncertainty(point_data, width_fraction=-0.1)
        with pytest.raises(DatasetError):
            inject_uncertainty(point_data, width_fraction=0.1, n_samples=0)

    def test_zero_width_returns_point_pdfs(self, point_data):
        result = inject_uncertainty(point_data, width_fraction=0.0)
        assert all(item.pdf(0).is_point for item in result)

    def test_pdf_width_scales_with_attribute_range(self, point_data):
        result = inject_uncertainty(point_data, width_fraction=0.2, n_samples=11)
        # Attribute 0 has range 3, attribute 1 has range 30.
        first = result.tuples[0]
        assert first.pdf(0).high - first.pdf(0).low == pytest.approx(0.2 * 3.0)
        assert first.pdf(1).high - first.pdf(1).low == pytest.approx(0.2 * 30.0)

    def test_pdf_centred_on_original_value(self, point_data):
        result = inject_uncertainty(point_data, width_fraction=0.2, n_samples=101)
        for original, uncertain in zip(point_data, result):
            for j in range(2):
                assert uncertain.pdf(j).mean() == pytest.approx(original.pdf(j).mean(), abs=1e-6)

    def test_number_of_samples_respected(self, point_data):
        result = inject_uncertainty(point_data, width_fraction=0.1, n_samples=17)
        assert result.tuples[0].pdf(0).n_samples == 17

    def test_gaussian_versus_uniform_kind(self, point_data):
        gaussian = inject_uncertainty(point_data, width_fraction=0.1, error_model="gaussian")
        uniform = inject_uncertainty(point_data, width_fraction=0.1, error_model="uniform")
        assert gaussian.tuples[0].pdf(0).kind == "gaussian"
        assert uniform.tuples[0].pdf(0).kind == "uniform"

    def test_uniform_masses_are_flat(self, point_data):
        uniform = inject_uncertainty(point_data, width_fraction=0.1, n_samples=9,
                                     error_model="uniform")
        masses = uniform.tuples[0].pdf(0).masses
        assert np.allclose(masses, masses[0])

    def test_original_dataset_unchanged(self, point_data):
        inject_uncertainty(point_data, width_fraction=0.3)
        assert all(item.pdf(0).is_point for item in point_data)

    def test_labels_and_weights_preserved(self, point_data):
        result = inject_uncertainty(point_data, width_fraction=0.1)
        assert [t.label for t in result] == [t.label for t in point_data]
        assert [t.weight for t in result] == [t.weight for t in point_data]

    def test_categorical_attributes_pass_through(self):
        attrs = [Attribute.numerical("x"), Attribute.categorical("c", ("u", "v"))]
        tuples = [
            UncertainTuple([SampledPdf.point(0.0), CategoricalDistribution.certain("u")], "a"),
            UncertainTuple([SampledPdf.point(4.0), CategoricalDistribution.certain("v")], "b"),
        ]
        data = UncertainDataset(attrs, tuples)
        result = inject_uncertainty(data, width_fraction=0.5, n_samples=5)
        assert result.tuples[0].categorical(1).most_likely() == "u"


class TestPerturbPoints:
    def test_zero_perturbation_is_identity_on_means(self, point_data):
        result = perturb_points(point_data, perturbation_fraction=0.0)
        for original, perturbed in zip(point_data, result):
            assert perturbed.pdf(0).mean() == pytest.approx(original.pdf(0).mean())

    def test_negative_perturbation_rejected(self, point_data):
        with pytest.raises(DatasetError):
            perturb_points(point_data, perturbation_fraction=-0.5)

    def test_perturbation_changes_values_but_keeps_point_pdfs(self, point_data, rng):
        result = perturb_points(point_data, perturbation_fraction=0.5, rng=rng)
        assert all(item.pdf(0).is_point for item in result)
        changed = any(
            abs(perturbed.pdf(0).mean() - original.pdf(0).mean()) > 1e-12
            for original, perturbed in zip(point_data, result)
        )
        assert changed

    def test_perturbation_magnitude_scales_with_u(self, point_data):
        rng_small = np.random.default_rng(0)
        rng_large = np.random.default_rng(0)
        small = perturb_points(point_data, perturbation_fraction=0.05, rng=rng_small)
        large = perturb_points(point_data, perturbation_fraction=0.50, rng=rng_large)
        small_shift = sum(
            abs(p.pdf(1).mean() - o.pdf(1).mean()) for o, p in zip(point_data, small)
        )
        large_shift = sum(
            abs(p.pdf(1).mean() - o.pdf(1).mean()) for o, p in zip(point_data, large)
        )
        assert large_shift > small_shift

    def test_labels_preserved(self, point_data, rng):
        result = perturb_points(point_data, perturbation_fraction=0.2, rng=rng)
        assert [t.label for t in result] == [t.label for t in point_data]


class TestModelWidth:
    def test_error_free_data_gives_w_equal_u(self):
        assert model_width_for_perturbation(0.1) == pytest.approx(0.1)

    def test_combines_intrinsic_and_injected_noise_quadratically(self):
        assert model_width_for_perturbation(0.3, intrinsic_fraction=0.4) == pytest.approx(0.5)

    def test_negative_fractions_rejected(self):
        with pytest.raises(DatasetError):
            model_width_for_perturbation(-0.1)
        with pytest.raises(DatasetError):
            model_width_for_perturbation(0.1, intrinsic_fraction=-0.2)


class TestRepeatedMeasurements:
    def test_pdfs_built_from_raw_samples(self):
        pdfs = repeated_measurement_pdfs([[1.0, 2.0, 3.0], [5.0, 5.0]])
        assert len(pdfs) == 2
        assert pdfs[0].mean() == pytest.approx(2.0)
        assert pdfs[1].is_point
