"""Consistent-hash ring: determinism, balance, and the ~1/N remap bound."""

from __future__ import annotations

import pytest

from repro.router.ring import DEFAULT_VNODES, HashRing

MEMBERS = [f"http://10.0.0.{index}:8000" for index in range(1, 6)]


def test_route_is_deterministic_across_instances():
    first = HashRing(MEMBERS)
    second = HashRing(list(reversed(MEMBERS)))  # construction order is irrelevant
    keys = [f"model-{index}" for index in range(200)]
    assert [first.route(key) for key in keys] == [second.route(key) for key in keys]


def test_route_only_returns_members():
    ring = HashRing(MEMBERS)
    for index in range(100):
        assert ring.route(f"key-{index}") in MEMBERS


def test_empty_ring_refuses_to_route():
    ring = HashRing([])
    assert not ring
    assert len(ring) == 0
    assert ring.owners("anything", 3) == []
    with pytest.raises(LookupError):
        ring.route("anything")


def test_owners_are_distinct_and_lead_with_the_route():
    ring = HashRing(MEMBERS)
    for index in range(50):
        key = f"model-{index}"
        owners = ring.owners(key, 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert owners[0] == ring.route(key)
        assert all(owner in MEMBERS for owner in owners)


def test_owners_caps_at_membership():
    ring = HashRing(MEMBERS[:2])
    assert len(ring.owners("key", 10)) == 2


def test_membership_change_remaps_about_one_nth():
    """Dropping one of N members remaps ~1/N of the keys (and only onto
    survivors); the statistical bound is generous but rules out the
    modulo-hashing failure mode where nearly everything moves."""
    n = len(MEMBERS)
    full = HashRing(MEMBERS)
    dropped = MEMBERS[2]
    reduced = full.with_members([member for member in MEMBERS if member != dropped])
    keys = [f"model-{index}" for index in range(2000)]
    moved = 0
    for key in keys:
        before = full.route(key)
        after = reduced.route(key)
        if before != after:
            moved += 1
            # Only keys the dropped member owned are allowed to move.
            assert before == dropped
    fraction = moved / len(keys)
    assert 0 < fraction < 2.5 / n  # ideal is 1/N = 0.2; allow vnode imbalance


def test_rejoin_restores_the_original_mapping():
    full = HashRing(MEMBERS)
    rejoined = full.with_members(MEMBERS[1:]).with_members(MEMBERS)
    keys = [f"model-{index}" for index in range(500)]
    assert [full.route(key) for key in keys] == [rejoined.route(key) for key in keys]


def test_ownership_is_roughly_balanced():
    ring = HashRing(MEMBERS)
    counts = {member: 0 for member in MEMBERS}
    for index in range(5000):
        counts[ring.route(f"key-{index}")] += 1
    expected = 5000 / len(MEMBERS)
    for member, count in counts.items():
        assert 0.4 * expected < count < 1.9 * expected, (member, count)


def test_vnodes_validation_and_contains():
    with pytest.raises(ValueError):
        HashRing(MEMBERS, vnodes=0)
    ring = HashRing(MEMBERS)
    assert ring.vnodes == DEFAULT_VNODES
    assert MEMBERS[0] in ring
    assert "http://elsewhere:9" not in ring
