"""Distributed-serving quickstart: replicas, router, fan-out, drain.

Run with::

    python examples/router_quickstart.py

Builds the whole mesh in one process: train a forest and a single tree
into a source-of-truth directory, sync the archives to two replica
directories, serve each over HTTP, and put a ``repro.router`` front tier
over both.  Then demonstrates the tier's contract — predictions through
the router (including forest fan-out, where member shards are computed
on different replicas and soft-vote-reduced at the router) are
bit-identical to the offline model — and walks the drain-on-deploy flow.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import UDTClassifier
from repro.api import gaussian
from repro.ensemble import UDTForestClassifier
from repro.router import create_router, sync_archives
from repro.serve import ServingClient, create_server


def main() -> None:
    rng = np.random.default_rng(7)
    X = rng.normal(size=(80, 3))
    y = np.where(X[:, 0] + X[:, 2] > 0, "pos", "neg")
    spec = gaussian(w=0.1, s=8)
    forest = UDTForestClassifier(n_estimators=8, spec=spec, random_state=0).fit(X, y)
    tree = UDTClassifier(spec=spec, min_split_weight=4.0).fit(X, y)

    with tempfile.TemporaryDirectory() as tmp:
        source = Path(tmp) / "source"
        source.mkdir()
        forest.save(source / "forest.zip")
        tree.save(source / "tree.zip")

        # Replicate the source-of-truth archives to each replica's models
        # directory — copy on (mtime, size) change, atomic rename, mtimes
        # preserved so every replica reports the same archive signature.
        replica_dirs = [Path(tmp) / "replica-a", Path(tmp) / "replica-b"]
        report = sync_archives(source, replica_dirs)
        print(f"sync: {report.describe()}")

        replicas = []
        for directory in replica_dirs:
            server = create_server(directory, port=0, max_batch=32, max_wait_ms=1.0)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            replicas.append(server)
            print(f"replica {directory.name} on {server.url}")

        # The router health-checks both replicas, pins each model to a
        # ring owner, and fans forests >= fanout_trees members out across
        # the ring.  (Production: `python -m repro router --replica ...`.)
        router = create_router(
            [server.url for server in replicas],
            fanout_trees=4,
            health_interval_s=0.5,
            up_after=1,
        )
        threading.Thread(target=router.serve_forever, daemon=True).start()
        print(f"router on {router.url}\n")

        client = ServingClient(router.url)  # the replica protocol, unchanged
        print(f"catalog through the router: "
              f"{[info.name for info in client.models()]}")

        # The contract: routing never changes answers.  The forest call
        # fans out (4 members per replica here) and is reduced at the
        # router — bitwise equal to the offline soft vote.
        rows = rng.normal(size=(12, 3))
        for name, model in (("forest", forest), ("tree", tree)):
            result = client.predict(name, rows)
            assert np.array_equal(result.probabilities, model.predict_proba(rows))
            print(f"{name}: routed == offline bit-identically "
                  f"({len(result.labels)} rows)")
        fanout = client.metrics()["fanout"]
        print(f"fan-out: {fanout['requests']} request(s) over "
              f"{fanout['shards']} member shard(s)\n")

        # Drain-on-deploy: take one replica out of the ring, wait for its
        # in-flight requests, deploy/restart it, hand it back.
        victim = replicas[0].url
        report = router.router.drain(victim, timeout_s=5.0)
        print(f"drained {victim}: {report['drained']} "
              f"(waited {report['waited_s']:.2f}s)")
        result = client.predict("forest", rows)  # survivor, still exact
        assert np.array_equal(result.probabilities, forest.predict_proba(rows))
        print(f"survivor still serves bit-identically; ring = "
              f"{router.router.describe()['ring_members']}")
        router.router.undrain(victim)

        router.close()
        for server in replicas:
            server.close()


if __name__ == "__main__":
    main()
