"""Recent-window reservoir of streamed training tuples.

:meth:`~repro.ensemble.forest.BaseForestClassifier.refresh_members` retrains
the worst-scoring forest members on *recent* data so the forest tracks
drift; this module holds that data.  The reservoir is a deterministic
sliding window (a bounded deque of the most recent tuples), not a random
sample: under drift the newest tuples are exactly the ones a refreshed
member should train on, and determinism keeps refreshed forests reproducible
from the stream alone.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.core.dataset import UncertainTuple
from repro.exceptions import TreeError

__all__ = ["StreamReservoir"]


class StreamReservoir:
    """Bounded window over the most recently streamed tuples."""

    def __init__(self, capacity: int) -> None:
        if isinstance(capacity, bool) or not isinstance(capacity, int) or capacity < 1:
            raise TreeError(f"reservoir capacity must be a positive integer, got {capacity!r}")
        self.capacity = capacity
        self._window: deque[UncertainTuple] = deque(maxlen=capacity)
        #: Total number of tuples ever offered (including evicted ones).
        self.seen = 0

    def extend(self, items: Iterable[UncertainTuple]) -> None:
        """Append tuples in stream order, evicting the oldest past capacity."""
        for item in items:
            self._window.append(item)
            self.seen += 1

    def window(self) -> list[UncertainTuple]:
        """The retained tuples, oldest first."""
        return list(self._window)

    def __len__(self) -> int:
        return len(self._window)

    def describe(self) -> dict:
        """Counters for logs and metrics."""
        return {"capacity": self.capacity, "size": len(self._window), "seen": self.seen}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamReservoir(capacity={self.capacity}, size={len(self._window)}, seen={self.seen})"
