"""Property tests for the streaming-update subsystem (ISSUE 10 satellite d).

Two invariants:

* **Stationary convergence** — on a stream drawn from the *same*
  distribution as the fit data, a model updated with ``partial_fit``
  stays within tolerance of a model refit from scratch on everything.
* **Re-split bit-identity** — whenever a leaf's accumulated tuples trigger
  a local re-split, the swapped-in subtree is structurally identical to
  building that subtree fresh on exactly those accumulated tuples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import UDTClassifier
from repro.api.spec import gaussian, point
from repro.core.dataset import UncertainDataset
from repro.stream import TreeUpdater


def stationary_data(seed, n_per_class, n_features=3, separation=3.5):
    rng = np.random.default_rng(seed)
    X = np.vstack([
        rng.normal(0.0, 1.0, size=(n_per_class, n_features)),
        rng.normal(separation, 1.0, size=(n_per_class, n_features)),
    ])
    y = ["a"] * n_per_class + ["b"] * n_per_class
    order = rng.permutation(len(X))
    return X[order], [y[i] for i in order]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_stationary_stream_converges_to_full_refit(seed):
    X, y = stationary_data(seed, n_per_class=60)
    X_test, y_test = stationary_data(seed + 1, n_per_class=40)
    half = len(X) // 2

    streamed = UDTClassifier(spec=point(), max_depth=6).fit(X[:half], y[:half])
    for start in range(half, len(X), 10):
        streamed.partial_fit(
            X[start:start + 10], y[start:start + 10],
            resplit_gain=0.01, resplit_min_weight=8.0,
        )
    refit = UDTClassifier(spec=point(), max_depth=6).fit(X, y)

    streamed_acc = streamed.score(X_test, y_test)
    refit_acc = refit.score(X_test, y_test)
    assert streamed_acc >= refit_acc - 0.05


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    gap=st.floats(min_value=1.5, max_value=3.0),
)
def test_triggered_resplit_is_bit_identical_to_fresh_build(seed, gap):
    rng = np.random.default_rng(seed)
    X0 = np.vstack([
        rng.normal(0.0, 1.0, size=(30, 2)), rng.normal(4.0, 1.0, size=(30, 2))
    ])
    y0 = ["a"] * 30 + ["b"] * 30
    spec = gaussian(w=0.05, s=8)
    live = UDTClassifier(spec=spec, max_depth=4).fit(X0, y0)
    twin = UDTClassifier(spec=spec, max_depth=4).fit(X0, y0)

    # A separable two-cluster stream concentrated around the 'b' region so
    # some leaf accumulates enough gain to trigger.
    Xs = np.vstack([
        rng.normal(4.0, 0.3, size=(12, 2)),
        rng.normal(4.0 + gap, 0.3, size=(12, 2)),
    ])
    ys = ["a"] * 12 + ["b"] * 12

    # Capture, on the twin, the buffer each touched leaf accumulated.
    twin_updater = TreeUpdater(
        twin.tree_, twin._make_builder(), resplit_gain=float("inf")
    )
    batch = twin._prepare_training(twin._coerce_update(Xs, ys))
    twin_updater.update(batch)

    live.partial_fit(Xs, ys, resplit_gain=0.01, resplit_min_weight=4.0)

    # Independently rebuild each subtree the trigger would fire for, swap
    # it into the twin, and require whole-tree structural identity.
    for state in list(twin_updater._states.values()):
        if state.buffer_weight < 4.0:
            continue
        local = UncertainDataset(
            batch.attributes, state.buffer, class_labels=batch.class_labels
        )
        builder = twin_updater.subtree_builder(state.depth)
        if builder.root_split_gain(local) < 0.01:
            continue
        fresh = builder.build(local).tree.root
        if state.parent is None:
            twin.tree_.root = fresh
        elif state.parent.is_numerical_test:
            if state.slot == "left":
                state.parent.left = fresh
            else:
                state.parent.right = fresh
        else:
            state.parent.branches[state.slot] = fresh
    assert live.tree_.structure_signature() == twin.tree_.structure_signature()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_partial_fit_preserves_probability_outputs(seed):
    X, y = stationary_data(seed, n_per_class=40)
    model = UDTClassifier(spec=point(), max_depth=5).fit(X[:40], y[:40])
    model.partial_fit(X[40:], y[40:])
    probabilities = model.predict_proba(X[:20])
    assert probabilities.shape == (20, 2)
    assert np.all(probabilities >= 0.0)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
