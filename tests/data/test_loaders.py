"""Unit tests for :mod:`repro.data.loaders` (CSV import/export)."""

from __future__ import annotations

import pytest

from repro.data.loaders import load_csv, save_csv, train_test_rows
from repro.exceptions import DatasetError


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(
        "height,width,label\n"
        "1.5,2.5,cat\n"
        "3.0,4.0,dog\n"
        "5.5,6.5,cat\n"
    )
    return path


class TestLoadCsv:
    def test_loads_values_and_labels(self, csv_file):
        data = load_csv(csv_file, label_column="label")
        assert len(data) == 3
        assert [a.name for a in data.attributes] == ["height", "width"]
        assert data.tuples[1].label == "dog"
        assert data.tuples[2].pdf(0).mean() == pytest.approx(5.5)

    def test_label_column_by_negative_index(self, csv_file):
        data = load_csv(csv_file, label_column=-1)
        assert data.class_labels == ("cat", "dog")

    def test_label_column_by_positive_index(self, tmp_path):
        path = tmp_path / "data2.csv"
        path.write_text("label,x\ncat,1.0\ndog,2.0\n")
        data = load_csv(path, label_column=0)
        assert [a.name for a in data.attributes] == ["x"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_csv(tmp_path / "missing.csv")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_header_without_rows_raises(self, tmp_path):
        path = tmp_path / "header_only.csv"
        path.write_text("a,b,label\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_unknown_label_column_raises(self, csv_file):
        with pytest.raises(DatasetError):
            load_csv(csv_file, label_column="missing")

    def test_name_lookup_requires_header(self, tmp_path):
        path = tmp_path / "no_header.csv"
        path.write_text("1.0,2.0,cat\n")
        with pytest.raises(DatasetError):
            load_csv(path, label_column="label", has_header=False)

    def test_without_header_generates_names(self, tmp_path):
        path = tmp_path / "no_header.csv"
        path.write_text("1.0,2.0,cat\n3.0,4.0,dog\n")
        data = load_csv(path, has_header=False, label_column=-1)
        assert [a.name for a in data.attributes] == ["A1", "A2"]

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b,label\n1.0,2.0,cat\n1.0,cat\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_non_numeric_feature_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,label\nnot-a-number,cat\n")
        with pytest.raises(DatasetError):
            load_csv(path)


class TestSaveCsv:
    def test_round_trip(self, csv_file, tmp_path):
        data = load_csv(csv_file)
        out = tmp_path / "out.csv"
        save_csv(data, out)
        reloaded = load_csv(out, label_column="class")
        assert len(reloaded) == len(data)
        assert reloaded.tuples[0].pdf(0).mean() == pytest.approx(1.5)

    def test_saves_means_of_uncertain_data(self, csv_file, tmp_path):
        from repro.data import inject_uncertainty

        data = inject_uncertainty(load_csv(csv_file), width_fraction=0.2, n_samples=11)
        out = tmp_path / "means.csv"
        save_csv(data, out)
        reloaded = load_csv(out, label_column="class")
        assert reloaded.tuples[0].pdf(0).mean() == pytest.approx(1.5, abs=1e-6)


class TestTrainTestRows:
    def test_split_is_disjoint_and_complete(self, rng):
        train, test = train_test_rows(20, 0.25, rng)
        assert set(train) | set(test) == set(range(20))
        assert not set(train) & set(test)
        assert len(test) == 5

    def test_invalid_fraction_rejected(self, rng):
        with pytest.raises(DatasetError):
            train_test_rows(10, 0.0, rng)
        with pytest.raises(DatasetError):
            train_test_rows(10, 1.0, rng)
