"""Setuptools shim for environments without the `wheel` package.

The project is fully described by ``pyproject.toml``; this file only exists
so that ``pip install -e .`` can fall back to the legacy editable install in
offline environments where PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
