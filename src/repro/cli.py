"""Command-line interface for running the paper's experiments.

The CLI mirrors the experiment runners in :mod:`repro.eval.experiment` so a
user can regenerate any of the paper's artefacts without writing code::

    python -m repro example                      # Table 1 / Figs. 2-3 walkthrough
    python -m repro accuracy --dataset Iris      # Table 3 rows for one dataset
    python -m repro noise --dataset Segment      # Fig. 4 curves
    python -m repro efficiency --dataset Glass   # Figs. 6-7 per-algorithm costs
    python -m repro sensitivity --dataset Glass --parameter s   # Fig. 8 / Fig. 9
    python -m repro datasets                     # list the Table 2 stand-ins

Every command accepts ``--scale`` and ``--samples`` to trade fidelity for
speed (the defaults finish in seconds).
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro import __version__
from repro.core import AveragingClassifier, UDTClassifier
from repro.core.builder import ENGINE_NAMES
from repro.data import table1_dataset
from repro.eval import (
    AccuracyExperiment,
    EfficiencyExperiment,
    NoiseModelExperiment,
    SensitivityExperiment,
    format_accuracy_results,
    format_efficiency_results,
    format_noise_model_results,
    format_sensitivity_results,
    format_table,
)
from repro.data.uci import TABLE2_DATASETS

__all__ = ["build_parser", "main"]


def _positive_int(value: str) -> int:
    """argparse type for worker counts: an integer of at least 1."""
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Decision Trees for Uncertain Data'.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(
        sub: argparse.ArgumentParser, default_scale: float = 0.25, jobs: bool = True
    ) -> None:
        sub.add_argument("--dataset", default="Iris", help="Table 2 dataset stand-in name")
        sub.add_argument("--scale", type=float, default=default_scale,
                         help="tuple-count scale factor (1.0 = paper-size)")
        sub.add_argument("--samples", type=int, default=30,
                         help="pdf sample count s (paper uses 100)")
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument("--engine", choices=ENGINE_NAMES, default="columnar",
                         help="tree-construction engine (both build identical trees; "
                              "'columnar' is several times faster)")
        if jobs:
            sub.add_argument("--jobs", type=_positive_int, default=1,
                             help="worker count: cross-validation folds run in parallel "
                                  "processes; very large pdf stores additionally build "
                                  "per-attribute split contexts in parallel threads "
                                  "(1 = sequential)")

    subparsers.add_parser("example", help="run the Table 1 handcrafted example")
    subparsers.add_parser("datasets", help="list the Table 2 dataset stand-ins")

    accuracy = subparsers.add_parser("accuracy", help="Table 3: AVG vs UDT accuracy")
    add_common(accuracy)
    accuracy.add_argument("--widths", type=float, nargs="+", default=[0.05, 0.10],
                          help="pdf widths w (fractions of the attribute range)")
    accuracy.add_argument("--error-model", choices=("gaussian", "uniform"), default="gaussian")
    accuracy.add_argument("--folds", type=int, default=3)

    noise = subparsers.add_parser("noise", help="Fig. 4: controlled-noise study")
    add_common(noise, default_scale=0.1)
    noise.add_argument("--perturbations", type=float, nargs="+", default=[0.0, 0.05, 0.10])
    noise.add_argument("--widths", type=float, nargs="+", default=[0.0, 0.05, 0.10, 0.20])

    efficiency = subparsers.add_parser("efficiency", help="Figs. 6-7: per-algorithm cost")
    add_common(efficiency)
    efficiency.add_argument("--width", type=float, default=0.10, help="pdf width w")

    # The sensitivity sweeps time individual sequential builds, so a worker
    # count would either be ignored or corrupt the measurement — no --jobs.
    sensitivity = subparsers.add_parser("sensitivity", help="Figs. 8-9: effect of s or w")
    add_common(sensitivity, jobs=False)
    sensitivity.add_argument("--parameter", choices=("s", "w"), default="s")

    return parser


def _run_example() -> None:
    data = table1_dataset()
    avg = AveragingClassifier().fit(data)
    udt = UDTClassifier(strategy="UDT", post_prune=False, min_split_weight=1e-6).fit(data)
    print("Table 1 example — accuracy on the six training tuples")
    print(format_table(
        ("classifier", "accuracy", "paper"),
        [("AVG", f"{avg.score(data):.4f}", "2/3"), ("UDT", f"{udt.score(data):.4f}", "1.0")],
    ))
    print("\nDistribution-based tree:")
    print(udt.tree_.to_text())


def _run_datasets() -> None:
    rows = [
        (
            spec.name,
            spec.n_training,
            spec.n_test if spec.has_test_split else "-",
            spec.n_attributes,
            spec.n_classes,
            "raw samples" if spec.repeated_measurements else
            ("integer" if spec.integer_domain else "real"),
        )
        for spec in TABLE2_DATASETS
    ]
    print(format_table(("dataset", "train", "test", "attributes", "classes", "domain"), rows))


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro``."""
    args = build_parser().parse_args(argv)

    if args.command == "example":
        _run_example()
    elif args.command == "datasets":
        _run_datasets()
    elif args.command == "accuracy":
        experiment = AccuracyExperiment(
            args.dataset, scale=args.scale, n_samples=args.samples,
            n_folds=args.folds, seed=args.seed, n_jobs=args.jobs, engine=args.engine,
        )
        results = experiment.run(
            width_fractions=tuple(args.widths), error_models=(args.error_model,)
        )
        print(format_accuracy_results(results))
    elif args.command == "noise":
        experiment = NoiseModelExperiment(
            args.dataset, scale=args.scale, n_samples=args.samples, n_folds=3,
            seed=args.seed, n_jobs=args.jobs, engine=args.engine,
        )
        results = experiment.run(
            perturbation_fractions=tuple(args.perturbations),
            width_fractions=tuple(args.widths),
        )
        print(format_noise_model_results(results))
    elif args.command == "efficiency":
        experiment = EfficiencyExperiment(
            args.dataset, scale=args.scale, n_samples=args.samples,
            width_fraction=args.width, seed=args.seed, n_jobs=args.jobs,
            engine=args.engine,
        )
        print(format_efficiency_results(experiment.run()))
    elif args.command == "sensitivity":
        experiment = SensitivityExperiment(
            args.dataset, scale=args.scale, seed=args.seed, engine=args.engine,
        )
        if args.parameter == "s":
            results = experiment.sweep_samples(sample_counts=(25, 50, 75, 100))
        else:
            results = experiment.sweep_widths(width_fractions=(0.02, 0.05, 0.10, 0.20),
                                              n_samples=args.samples)
        print(format_sensitivity_results(results))
    return 0
