"""Traffic shapes and the arrival-time scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.loadgen import (
    SHAPE_NAMES,
    DiurnalShape,
    HotKeyShape,
    SpikeShape,
    SteadyShape,
    arrival_times,
    make_shape,
)


class TestRegistry:
    def test_shape_names(self):
        assert SHAPE_NAMES == ("diurnal", "hotkey", "spike", "steady")

    @pytest.mark.parametrize("name", SHAPE_NAMES)
    def test_make_shape_round_trips(self, name):
        shape = make_shape(name)
        assert shape.name == name
        assert shape.describe()["shape"] == name

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic shape"):
            make_shape("tsunami")

    def test_overrides_forwarded(self):
        assert make_shape("spike", factor=8.0).factor == 8.0
        assert make_shape("hotkey", hot_share=0.5).hot_share == 0.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SpikeShape(factor=0.5)
        with pytest.raises(ValueError):
            SpikeShape(start=0.7, end=0.3)
        with pytest.raises(ValueError):
            DiurnalShape(amplitude=1.5)
        with pytest.raises(ValueError):
            HotKeyShape(hot_share=0.0)


class TestRateMultipliers:
    def test_steady_is_flat(self):
        shape = SteadyShape()
        assert [shape.rate_multiplier(t) for t in (0.0, 0.5, 0.99)] == [1.0, 1.0, 1.0]

    def test_spike_window(self):
        shape = SpikeShape(factor=4.0, start=0.4, end=0.6)
        assert shape.rate_multiplier(0.39) == 1.0
        assert shape.rate_multiplier(0.5) == 4.0
        assert shape.rate_multiplier(0.6) == 1.0

    def test_diurnal_trough_peak(self):
        shape = DiurnalShape(amplitude=0.8)
        assert shape.rate_multiplier(0.0) == pytest.approx(0.2)
        assert shape.rate_multiplier(0.5) == pytest.approx(1.8)
        assert shape.rate_multiplier(0.25) == pytest.approx(1.0)


class TestModelSelection:
    def test_uniform_default(self):
        rng = np.random.default_rng(0)
        picks = [SteadyShape().pick_model(rng, ["a", "b"]) for _ in range(2000)]
        assert 0.45 < picks.count("a") / 2000 < 0.55

    def test_hotkey_skew(self):
        rng = np.random.default_rng(0)
        shape = HotKeyShape(hot_share=0.8)
        picks = [shape.pick_model(rng, ["hot", "c1", "c2"]) for _ in range(3000)]
        assert 0.75 < picks.count("hot") / 3000 < 0.85
        assert picks.count("c1") > 0 and picks.count("c2") > 0

    def test_single_model_always_picked(self):
        rng = np.random.default_rng(0)
        assert HotKeyShape().pick_model(rng, ["only"]) == "only"

    def test_empty_model_list_rejected(self):
        with pytest.raises(ValueError):
            SteadyShape().pick_model(np.random.default_rng(0), [])


class TestArrivalTimes:
    def test_deterministic_steady_spacing(self):
        offsets = arrival_times(SteadyShape(), 50.0, 4.0, poisson=False)
        assert len(offsets) == 200
        assert np.allclose(np.diff(offsets), 0.02)
        assert 0.0 <= offsets[0] and offsets[-1] < 4.0

    def test_deterministic_spike_density(self):
        offsets = arrival_times(SpikeShape(), 50.0, 4.0, poisson=False)
        rates = np.histogram(offsets, bins=[0.0, 1.6, 2.4, 4.0])[0] / [1.6, 0.8, 1.6]
        assert rates[0] == pytest.approx(50.0, rel=0.05)
        assert rates[1] == pytest.approx(200.0, rel=0.05)
        assert rates[2] == pytest.approx(50.0, rel=0.05)

    def test_deterministic_diurnal_is_symmetric(self):
        offsets = arrival_times(DiurnalShape(), 40.0, 4.0, poisson=False)
        quarters = np.histogram(offsets, bins=[0.0, 1.0, 2.0, 3.0, 4.0])[0]
        assert quarters[0] < quarters[1]
        assert quarters[3] < quarters[2]
        assert abs(int(quarters[0]) - int(quarters[3])) <= 2

    def test_poisson_is_seed_deterministic(self):
        a = arrival_times(SpikeShape(), 30.0, 4.0, np.random.default_rng(5))
        b = arrival_times(SpikeShape(), 30.0, 4.0, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_poisson_total_near_expectation(self):
        # Spike expectation: 30 * 4 * (0.8 + 0.2*4) = 192 arrivals.
        counts = [
            len(arrival_times(SpikeShape(), 30.0, 4.0, np.random.default_rng(seed)))
            for seed in range(20)
        ]
        assert 150 < float(np.mean(counts)) < 235

    def test_poisson_arrivals_sorted_in_range(self):
        offsets = arrival_times(DiurnalShape(), 25.0, 3.0, np.random.default_rng(1))
        assert np.all(np.diff(offsets) >= 0)
        assert np.all((offsets >= 0) & (offsets < 3.0))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(SteadyShape(), 0.0, 1.0)
        with pytest.raises(ValueError):
            arrival_times(SteadyShape(), 10.0, 0.0)
