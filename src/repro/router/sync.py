"""Registry sync: replicate model archives to replica model directories.

A deployment keeps one source-of-truth directory of ``*.zip`` model
archives; every serving replica watches its own registry directory
(:class:`~repro.serve.registry.ModelRegistry` hot-reloads on mtime/size
changes).  :func:`sync_archives` brings the replica directories up to date:

* **change detection** is by ``(mtime_ns, size)``, the same signature the
  registry's hot reload keys on — a copied archive keeps its source mtime
  (``shutil.copystat``), so an unchanged source is recognised as in-sync
  on every later pass without hashing file contents;
* **atomicity**: each archive is copied to a ``.sync-tmp`` sibling in the
  destination directory, fsynced, and moved into place with
  :func:`os.replace`.  The rename is atomic on POSIX, so a replica's
  registry either sees the old complete archive or the new complete
  archive — never a half-written zip (which would surface as a 500 on the
  next predict for that model).  Replacing by rename also gives the new
  file a *new inode*: a replica that has memory-mapped the old archive's
  v3 array block (:mod:`repro.api.persistence`) keeps serving its pinned
  snapshot from the old inode untouched until its registry remaps, which
  is exactly the hot-reload drain contract of the serving tier;
* **pruning** (opt-in ``delete=True``) removes destination archives whose
  source has disappeared, so undeployed models stop serving.

The router runs this in a background loop (``--sync-interval``); it is
equally usable one-shot from scripts.  Failures on one archive or one
destination are recorded in the returned report and do not stop the rest
of the sweep.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ServingError

__all__ = ["SyncReport", "sync_archives"]

#: Suffix of the temporary file an archive is staged to before the atomic
#: rename into place.  Lives in the destination directory (``os.replace``
#: must not cross filesystems) but outside the registry's ``*.zip`` glob.
_TMP_SUFFIX = ".sync-tmp"


@dataclass
class SyncReport:
    """What one sync sweep did, per destination-relative archive path."""

    copied: "list[str]" = field(default_factory=list)
    unchanged: "list[str]" = field(default_factory=list)
    deleted: "list[str]" = field(default_factory=list)
    errors: "dict[str, str]" = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return bool(self.copied or self.deleted)

    def describe(self) -> dict:
        return {
            "copied": list(self.copied),
            "unchanged": list(self.unchanged),
            "deleted": list(self.deleted),
            "errors": dict(self.errors),
        }


def _signature(path: Path) -> "tuple[int, int]":
    stat = path.stat()
    return stat.st_mtime_ns, stat.st_size


def _copy_atomic(source: Path, destination: Path) -> None:
    """Stage-fsync-rename copy that preserves the source's (mtime, size).

    The fsync before the rename matters for mmap-first archives: once the
    rename publishes the new name, a replica may immediately memory-map the
    array block, so the staged bytes must be durably complete — a crash
    must never leave the *published* name pointing at partially written
    data.  The old inode, if any replica still maps it, lives on until the
    last mapping closes; ``os.replace`` only swaps the name.
    """
    staging = destination.with_name(destination.name + _TMP_SUFFIX)
    try:
        with open(source, "rb") as stream_in, open(staging, "wb") as stream_out:
            shutil.copyfileobj(stream_in, stream_out)
            stream_out.flush()
            os.fsync(stream_out.fileno())
        shutil.copystat(source, staging)
        os.replace(staging, destination)
    except BaseException:
        # A failed copy must not leave staging litter for the next sweep
        # to trip over (missing_ok flag only exists on 3.8+, which we have).
        staging.unlink(missing_ok=True)
        raise


def sync_archives(
    source_dir,
    destinations,
    *,
    pattern: str = "*.zip",
    delete: bool = False,
) -> SyncReport:
    """One sync sweep from ``source_dir`` to every directory in ``destinations``.

    Destination directories are created if missing.  Returns a
    :class:`SyncReport`; per-archive failures (a file replaced mid-copy, a
    permission problem on one destination) land in ``report.errors`` keyed
    by ``<destination>/<name>`` and never abort the remaining work.
    """
    source = Path(source_dir)
    if not source.is_dir():
        raise ServingError(f"sync source {str(source)!r} does not exist")
    targets = [Path(destination) for destination in destinations]
    if not targets:
        raise ServingError("sync needs at least one destination directory")
    report = SyncReport()
    archives = sorted(path for path in source.glob(pattern) if path.is_file())
    for target in targets:
        try:
            target.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            report.errors[str(target)] = str(exc)
            continue
        wanted = set()
        for archive in archives:
            destination = target / archive.name
            label = str(destination)
            wanted.add(archive.name)
            try:
                if destination.exists() and _signature(destination) == _signature(archive):
                    report.unchanged.append(label)
                    continue
                _copy_atomic(archive, destination)
                report.copied.append(label)
            except OSError as exc:
                report.errors[label] = str(exc)
        if delete:
            for stale in sorted(target.glob(pattern)):
                if stale.name in wanted:
                    continue
                label = str(stale)
                try:
                    stale.unlink()
                    report.deleted.append(label)
                except OSError as exc:
                    report.errors[label] = str(exc)
    return report
