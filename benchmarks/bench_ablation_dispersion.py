"""E8 — Section 7.4 ablation: Gini index and gain ratio as dispersion measures.

The paper states that all pruning results carry over to the Gini index (with
the Eq. 4 bound) and that gain ratio loses Theorem 2 (homogeneous-interval
pruning) but keeps Theorem 1 and pruning-by-bounding.  This ablation repeats
the Fig. 7 measurement under all three measures and also compares the
resulting accuracies.
"""

from __future__ import annotations

import pytest

from repro.core import UDTClassifier
from repro.data import inject_uncertainty, load_dataset
from repro.eval import format_table

from helpers import BENCH_ENGINE, BENCH_SAMPLES, BENCH_SCALE, save_artifact, save_json_artifact

_MEASURES = ("entropy", "gini", "gain_ratio")
_DATASET = "Glass"

_rows = []


def _training():
    training, _, _ = load_dataset(_DATASET, scale=BENCH_SCALE, seed=43)
    return inject_uncertainty(training, width_fraction=0.10, n_samples=BENCH_SAMPLES)


@pytest.mark.parametrize("measure", _MEASURES)
def bench_ablation_dispersion_measure(benchmark, measure):
    """Build UDT and UDT-GP trees under one dispersion measure."""
    training = _training()

    def run():
        exhaustive = UDTClassifier(strategy="UDT", measure=measure, engine=BENCH_ENGINE).fit(training)
        pruned = UDTClassifier(strategy="UDT-GP", measure=measure, engine=BENCH_ENGINE).fit(training)
        return exhaustive, pruned

    exhaustive, pruned = benchmark.pedantic(run, rounds=1, iterations=1)
    exhaustive_calcs = exhaustive.build_stats_.total_entropy_like_calculations
    pruned_calcs = pruned.build_stats_.total_entropy_like_calculations
    _rows.append(
        (
            measure,
            f"{exhaustive.score(training):.4f}",
            f"{pruned.score(training):.4f}",
            exhaustive_calcs,
            pruned_calcs,
            f"{100.0 * pruned_calcs / exhaustive_calcs:.1f}%",
        )
    )
    # Safe pruning under every measure: same training accuracy.
    assert pruned.score(training) == pytest.approx(exhaustive.score(training))
    # Pruning must help for entropy and Gini; for gain ratio it is weaker
    # (no homogeneous-interval pruning) but must never be counter-productive.
    assert pruned_calcs <= exhaustive_calcs


def bench_ablation_dispersion_report(benchmark):
    """Write the dispersion-measure ablation artefact."""
    headers = (
        "measure", "UDT accuracy", "UDT-GP accuracy",
        "UDT calcs", "UDT-GP calcs", "GP/UDT",
    )
    benchmark(lambda: format_table(headers, _rows))
    body = format_table(headers, _rows)
    body += (
        "\n\nExpected (Sec. 7.4): Gini behaves like entropy (Theorems 1-3 + Eq. 4 bound);"
        "\ngain ratio cannot prune homogeneous intervals, so its reduction is smaller."
    )
    save_artifact("ablation_dispersion", "Section 7.4 ablation — dispersion measures", body)
    save_json_artifact(
        "ablation_dispersion",
        [
            {
                "measure": row[0],
                "udt_accuracy": float(row[1]),
                "udt_gp_accuracy": float(row[2]),
                "udt_entropy_calculations": row[3],
                "udt_gp_entropy_calculations": row[4],
            }
            for row in _rows
        ],
    )
