"""Stand-ins for the UCI datasets of Table 2.

The paper evaluates on ten UCI Machine Learning Repository datasets.  This
offline reproduction cannot download them, so each dataset is replaced by a
*seeded synthetic stand-in* with the same shape (tuples × attributes ×
classes) and comparable character (integer-valued attributes for the
quantised datasets, raw repeated measurements for JapaneseVowel).  The
substitution is documented in DESIGN.md; every experiment accepts a
``scale`` factor so the benches can run on smaller-but-same-shaped data.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import Attribute, UncertainDataset, UncertainTuple
from repro.core.pdf import SampledPdf
from repro.data.synthetic import ClassificationSpec, make_classification_points
from repro.exceptions import DatasetError

__all__ = ["UCIDatasetSpec", "TABLE2_DATASETS", "dataset_names", "load_dataset", "load_japanese_vowel"]


@dataclass(frozen=True)
class UCIDatasetSpec:
    """Shape metadata of one Table 2 dataset.

    ``n_training`` / ``n_test`` mirror the repository's train/test division;
    datasets without a published split (``n_test == 0``) are evaluated by
    cross validation, exactly as in the paper.
    """

    name: str
    n_training: int
    n_test: int
    n_attributes: int
    n_classes: int
    integer_domain: bool = False
    repeated_measurements: bool = False
    class_separation: float = 2.5
    #: Magnitude of the measurement error already present in the recorded
    #: values, expressed like the paper's ``u`` (noise std = u * |A_j| / 4).
    #: Real UCI data carries such unknown intrinsic error (Section 4.4); the
    #: stand-ins make it explicit so that modelling it with pdfs of a
    #: matching width pays off, as the paper observes.
    intrinsic_noise: float = 0.10

    @property
    def n_tuples(self) -> int:
        return self.n_training + self.n_test

    @property
    def has_test_split(self) -> bool:
        return self.n_test > 0


#: The ten datasets of Table 2 (shapes as published in the UCI repository).
TABLE2_DATASETS: tuple[UCIDatasetSpec, ...] = (
    UCIDatasetSpec("JapaneseVowel", 270, 370, 12, 9, repeated_measurements=True,
                   class_separation=3.0),
    UCIDatasetSpec("PenDigits", 7494, 3498, 16, 10, integer_domain=True),
    UCIDatasetSpec("PageBlock", 5473, 0, 10, 5),
    UCIDatasetSpec("Satellite", 4435, 2000, 36, 6, integer_domain=True),
    UCIDatasetSpec("Segment", 2310, 0, 19, 7),
    UCIDatasetSpec("Vehicle", 846, 0, 18, 4, integer_domain=True),
    UCIDatasetSpec("BreastCancer", 569, 0, 10, 2, class_separation=3.0),
    UCIDatasetSpec("Ionosphere", 351, 0, 32, 2),
    UCIDatasetSpec("Glass", 214, 0, 9, 6, class_separation=2.0),
    UCIDatasetSpec("Iris", 150, 0, 4, 3, class_separation=3.0),
)

_BY_NAME = {spec.name.lower(): spec for spec in TABLE2_DATASETS}


def dataset_names() -> list[str]:
    """Names of the Table 2 datasets, in the paper's order."""
    return [spec.name for spec in TABLE2_DATASETS]


def get_spec(name: str) -> UCIDatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from exc


def _scaled(count: int, scale: float, minimum: int) -> int:
    return max(int(round(count * scale)), minimum)


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
) -> tuple[UncertainDataset, UncertainDataset | None, UCIDatasetSpec]:
    """Generate the synthetic stand-in for a Table 2 dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    scale:
        Multiplier applied to the tuple counts (the attribute and class
        counts are never scaled).  The benches use small scales so they run
        in seconds; ``scale=1.0`` reproduces the published shapes.
    seed:
        Seed of the deterministic generator; the same (name, scale, seed)
        always yields the same data.

    Returns
    -------
    (training, test, spec)
        ``test`` is ``None`` for datasets evaluated by cross validation.
        The JapaneseVowel stand-in is returned with raw repeated-measurement
        pdfs (uncertain data); all others are point-valued and should be fed
        through :func:`repro.data.uncertainty.inject_uncertainty`.
    """
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale!r}")
    spec = get_spec(name)
    # A process-independent name hash: ``hash(str)`` is salted per process,
    # which would make "seeded" data differ from run to run.
    name_hash = zlib.crc32(spec.name.encode("utf-8"))
    rng = np.random.default_rng(seed + name_hash % (2**16))

    if spec.repeated_measurements:
        training, test = _japanese_vowel_like(spec, scale, rng)
        return training, test, spec

    n_training = _scaled(spec.n_training, scale, minimum=spec.n_classes * 4)
    n_test = _scaled(spec.n_test, scale, minimum=spec.n_classes * 2) if spec.has_test_split else 0
    class_spec = ClassificationSpec(
        n_tuples=n_training + n_test,
        n_attributes=spec.n_attributes,
        n_classes=spec.n_classes,
        class_separation=spec.class_separation,
        integer_domain=spec.integer_domain,
    )
    values, labels = make_classification_points(class_spec, rng)
    values = _add_intrinsic_noise(values, spec, rng)
    attribute_names = [f"{spec.name}_A{j + 1}" for j in range(spec.n_attributes)]
    full = UncertainDataset.from_points(values, labels, attribute_names=attribute_names)
    if not spec.has_test_split:
        return full, None, spec
    training = full.subset(range(n_training))
    test = full.subset(range(n_training, n_training + n_test))
    return training, test, spec


def load_japanese_vowel(
    *, scale: float = 1.0, seed: int = 0
) -> tuple[UncertainDataset, UncertainDataset, UCIDatasetSpec]:
    """Convenience wrapper returning the JapaneseVowel-like uncertain data."""
    training, test, spec = load_dataset("JapaneseVowel", scale=scale, seed=seed)
    assert test is not None
    return training, test, spec


def _add_intrinsic_noise(
    values: np.ndarray, spec: UCIDatasetSpec, rng: np.random.Generator
) -> np.ndarray:
    """Add the dataset's intrinsic measurement error to the recorded values.

    The noise standard deviation follows the paper's convention for the
    perturbation parameter: ``sigma_j = intrinsic_noise * |A_j| / 4``.
    Integer-domain datasets are re-quantised after the noise is added, which
    is exactly the setting in which the paper found uniform error models to
    outperform Gaussian ones.
    """
    if spec.intrinsic_noise <= 0:
        return values
    spans = values.max(axis=0) - values.min(axis=0)
    spans = np.where(spans > 0, spans, 1.0)
    sigma = spec.intrinsic_noise * spans / 4.0
    noisy = values + rng.normal(0.0, 1.0, size=values.shape) * sigma
    if spec.integer_domain:
        noisy = np.round(noisy)
    return noisy


def _japanese_vowel_like(
    spec: UCIDatasetSpec, scale: float, rng: np.random.Generator
) -> tuple[UncertainDataset, UncertainDataset]:
    """Synthetic repeated-measurement data in the shape of JapaneseVowel.

    Every attribute value is observed 7–29 times (as in the real data's LPC
    frames); the observations are noisy readings of a per-tuple latent value
    drawn from the class-conditional distribution.  The pdfs are the
    empirical distributions of the raw observations.
    """
    n_training = _scaled(spec.n_training, scale, minimum=spec.n_classes * 4)
    n_test = _scaled(spec.n_test, scale, minimum=spec.n_classes * 2)
    class_spec = ClassificationSpec(
        n_tuples=n_training + n_test,
        n_attributes=spec.n_attributes,
        n_classes=spec.n_classes,
        class_separation=spec.class_separation,
    )
    latent_values, labels = make_classification_points(class_spec, rng)
    attributes = [Attribute.numerical(f"LPC{j + 1}") for j in range(spec.n_attributes)]
    # Measurement noise comparable to half the class spread, so the raw
    # samples of one value genuinely overlap neighbouring classes.
    noise_std = 0.8

    tuples: list[UncertainTuple] = []
    for i in range(latent_values.shape[0]):
        features = []
        for j in range(spec.n_attributes):
            n_observations = int(rng.integers(7, 30))
            observations = latent_values[i, j] + rng.normal(0.0, noise_std, size=n_observations)
            features.append(SampledPdf.from_samples(observations))
        tuples.append(UncertainTuple(features, label=labels[i]))
    full = UncertainDataset(attributes, tuples)
    training = full.subset(range(n_training))
    test = full.subset(range(n_training, n_training + n_test))
    return training, test
