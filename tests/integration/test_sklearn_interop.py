"""Optional-dependency smoke test: the estimators drive real scikit-learn.

scikit-learn is *not* a dependency of this library — the estimators follow
its protocol by duck typing (``get_params``/``set_params``, ``fit``/
``predict``/``predict_proba``/``score``, ``classes_``, ``n_features_in_``).
This module verifies the contract against an actual scikit-learn install
(the CI ``sklearn-interop`` job installs the ``[sklearn]`` extra); locally
it is skipped when scikit-learn is missing.
"""

from __future__ import annotations

import numpy as np
import pytest

sklearn = pytest.importorskip("sklearn")

from sklearn.base import clone  # noqa: E402
from sklearn.model_selection import GridSearchCV, cross_val_score  # noqa: E402

from repro.api import gaussian  # noqa: E402
from repro.core import AveragingClassifier, UDTClassifier  # noqa: E402


@pytest.fixture
def arrays(rng):
    X = np.vstack([rng.normal(0.0, 1.0, (30, 3)), rng.normal(3.5, 1.0, (30, 3))])
    y = np.array([0] * 30 + [1] * 30)
    return X, y


class TestClone:
    def test_clone_preserves_params_and_unfits(self, arrays):
        X, y = arrays
        model = UDTClassifier(strategy="UDT-GP", spec=gaussian(w=0.1, s=8)).fit(X, y)
        cloned = clone(model)
        assert cloned is not model
        assert cloned.tree_ is None
        assert cloned.strategy == "UDT-GP"
        assert cloned.spec is not model.spec
        assert cloned.spec.get_params() == model.spec.get_params()

    def test_clone_averaging(self):
        model = AveragingClassifier(max_depth=3)
        assert clone(model).max_depth == 3


class TestCrossValScore:
    def test_cross_val_score_runs(self, arrays):
        X, y = arrays
        scores = cross_val_score(
            UDTClassifier(spec=gaussian(w=0.1, s=8)), X, y, cv=3
        )
        assert scores.shape == (3,)
        assert scores.mean() > 0.8


class TestGridSearch:
    def test_grid_over_strategy_and_w(self, arrays):
        X, y = arrays
        grid = GridSearchCV(
            UDTClassifier(spec=gaussian(w=0.1, s=6)),
            param_grid={
                "strategy": ["UDT", "UDT-ES"],
                "spec__w": [0.05, 0.2],
            },
            cv=2,
        )
        grid.fit(X, y)
        assert grid.best_score_ > 0.8
        assert grid.best_params_["strategy"] in ("UDT", "UDT-ES")
        assert grid.best_params_["spec__w"] in (0.05, 0.2)
        # The refitted best estimator predicts on plain arrays.
        assert grid.best_estimator_.predict(X).shape == (len(X),)
