"""End-to-end integration tests exercising the full public API surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    Attribute,
    AveragingClassifier,
    CategoricalDistribution,
    SampledPdf,
    UDTClassifier,
    UncertainDataset,
    UncertainTuple,
)
from repro.data import inject_uncertainty, load_csv, load_dataset, save_csv
from repro.eval import AccuracyExperiment, cross_validate, format_accuracy_results

pytestmark = pytest.mark.integration


class TestPackageSurface:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        attrs = [Attribute.numerical("temperature")]
        tuples = [
            UncertainTuple([SampledPdf.gaussian(37.0, 0.2)], label="healthy"),
            UncertainTuple([SampledPdf.gaussian(39.5, 0.2)], label="fever"),
        ]
        data = UncertainDataset(attrs, tuples)
        model = UDTClassifier().fit(data)
        assert model.predict(tuples[0]) == "healthy"
        assert model.predict(tuples[1]) == "fever"


class TestCsvToClassifierPipeline:
    def test_csv_roundtrip_training(self, tmp_path):
        # Create a small CSV, load it, inject uncertainty, train, evaluate.
        rows = ["x,y,label"]
        rng = np.random.default_rng(0)
        for _ in range(30):
            rows.append(f"{rng.normal(0):.4f},{rng.normal(0):.4f},low")
            rows.append(f"{rng.normal(5):.4f},{rng.normal(5):.4f},high")
        path = tmp_path / "train.csv"
        path.write_text("\n".join(rows) + "\n")

        data = load_csv(path, label_column="label")
        uncertain = inject_uncertainty(data, width_fraction=0.1, n_samples=10)
        model = UDTClassifier(strategy="UDT-GP").fit(uncertain)
        assert model.score(uncertain) > 0.9

        out = tmp_path / "export.csv"
        save_csv(uncertain, out)
        assert out.exists() and out.read_text().startswith("x,y,class")


class TestMixedAttributePipeline:
    def test_numerical_and_categorical_attributes_together(self, mixed_dataset):
        udt = UDTClassifier(strategy="UDT-ES").fit(mixed_dataset)
        avg = AveragingClassifier().fit(mixed_dataset)
        assert udt.score(mixed_dataset) > 0.9
        assert avg.score(mixed_dataset) > 0.9
        # Probabilistic output covers both classes.
        probabilities = udt.predict_proba(mixed_dataset)
        assert probabilities.shape == (len(mixed_dataset), 2)

    def test_rule_extraction_readable(self, mixed_dataset):
        model = UDTClassifier().fit(mixed_dataset)
        rules = model.tree_.extract_rules()
        assert rules
        assert all("THEN class" in str(rule) for rule in rules)


class TestExperimentPipeline:
    def test_accuracy_experiment_report(self):
        experiment = AccuracyExperiment("Glass", scale=0.2, n_samples=6, n_folds=3, seed=0)
        results = experiment.run(width_fractions=(0.1,), error_models=("gaussian",))
        report = format_accuracy_results(results)
        assert "Glass" in report and "UDT" in report

    def test_cross_validated_uci_stand_in(self):
        training, _, _ = load_dataset("Iris", scale=0.4, seed=0)
        uncertain = inject_uncertainty(training, width_fraction=0.1, n_samples=8)

        def evaluate(fold_training, fold_test):
            return UDTClassifier(strategy="UDT-ES").fit(fold_training).score(fold_test)

        scores = cross_validate(uncertain, evaluate, n_folds=3, rng=np.random.default_rng(0))
        assert len(scores) == 3
        assert np.mean(scores) > 0.6

    def test_train_test_split_dataset_flow(self):
        training, test, _ = load_dataset("PenDigits", scale=0.015, seed=0)
        assert test is not None
        uncertain_training = inject_uncertainty(
            training, width_fraction=0.1, n_samples=8, error_model="uniform"
        )
        uncertain_test = inject_uncertainty(
            test, width_fraction=0.1, n_samples=8, error_model="uniform"
        )
        model = UDTClassifier(strategy="UDT-ES").fit(uncertain_training)
        assert 0.0 <= model.score(uncertain_test) <= 1.0


class TestRobustness:
    def test_single_attribute_single_sample_pdfs(self):
        attrs = [Attribute.numerical("x")]
        tuples = [
            UncertainTuple([SampledPdf.point(float(i % 5))], "a" if i % 2 else "b")
            for i in range(20)
        ]
        data = UncertainDataset(attrs, tuples)
        model = UDTClassifier(strategy="UDT-GP").fit(data)
        assert 0.0 <= model.score(data) <= 1.0

    def test_many_classes_few_tuples(self):
        attrs = [Attribute.numerical("x")]
        tuples = [
            UncertainTuple([SampledPdf.gaussian(float(3 * i), 0.3, n_samples=6)], f"c{i}")
            for i in range(8)
        ]
        data = UncertainDataset(attrs, tuples)
        model = UDTClassifier(min_split_weight=0.5).fit(data)
        assert model.score(data) >= 0.75

    def test_duplicate_tuples_do_not_break_building(self):
        attrs = [Attribute.numerical("x")]
        pdf = SampledPdf.gaussian(0.0, 1.0, n_samples=10)
        tuples = [UncertainTuple([pdf], "a") for _ in range(10)] + [
            UncertainTuple([pdf], "b") for _ in range(10)
        ]
        data = UncertainDataset(attrs, tuples)
        model = UDTClassifier().fit(data)
        probabilities = model.predict_proba(tuples[0])
        assert probabilities == pytest.approx([0.5, 0.5], abs=1e-6)

    def test_categorical_only_with_unseen_test_value(self):
        attrs = [Attribute.categorical("c", ("x", "y", "z"))]
        tuples = [
            UncertainTuple([CategoricalDistribution.certain("x")], "one"),
            UncertainTuple([CategoricalDistribution.certain("x")], "one"),
            UncertainTuple([CategoricalDistribution.certain("y")], "two"),
            UncertainTuple([CategoricalDistribution.certain("y")], "two"),
        ]
        data = UncertainDataset(attrs, tuples)
        model = UDTClassifier().fit(data)
        unseen = UncertainTuple([CategoricalDistribution.certain("z")])
        probabilities = model.predict_proba(unseen)
        assert probabilities.sum() == pytest.approx(1.0)
