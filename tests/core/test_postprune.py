"""Unit tests for :mod:`repro.core.postprune` (pessimistic post-pruning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InternalNode, LeafNode, SampledPdf, TreeBuilder, UncertainDataset, UncertainTuple, Attribute
from repro.core.postprune import normal_quantile, pessimistic_error, pessimistic_prune


class TestNormalQuantile:
    def test_median_is_zero(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_known_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.75) == pytest.approx(0.674490, abs=1e-4)
        assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-4)

    def test_symmetry(self):
        assert normal_quantile(0.9) == pytest.approx(-normal_quantile(0.1), abs=1e-9)

    def test_tail_values_are_finite_and_monotone(self):
        low = normal_quantile(1e-6)
        high = normal_quantile(1 - 1e-6)
        assert low < -4 and high > 4

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestPessimisticError:
    def test_zero_total_gives_zero(self):
        assert pessimistic_error(0.0, 0.0) == 0.0

    def test_pessimistic_error_exceeds_observed(self):
        observed = 2.0
        assert pessimistic_error(observed, 10.0) > observed

    def test_never_exceeds_total(self):
        assert pessimistic_error(9.5, 10.0) <= 10.0

    def test_monotone_in_observed_errors(self):
        low = pessimistic_error(1.0, 20.0)
        high = pessimistic_error(5.0, 20.0)
        assert high > low

    def test_smaller_confidence_is_more_pessimistic(self):
        strict = pessimistic_error(2.0, 20.0, confidence=0.05)
        lenient = pessimistic_error(2.0, 20.0, confidence=0.5)
        assert strict > lenient

    def test_fractional_counts_supported(self):
        value = pessimistic_error(0.75, 3.5)
        assert 0.75 < value <= 3.5


class TestPessimisticPrune:
    def _noisy_subtree(self):
        """A subtree whose split does not really help (same majority on both sides)."""
        left = LeafNode(np.array([0.60, 0.40]), training_weight=10.0)
        right = LeafNode(np.array([0.55, 0.45]), training_weight=10.0)
        return InternalNode(
            0, split_point=0.0, left=left, right=right,
            training_weight=20.0, training_distribution=np.array([0.575, 0.425]),
        )

    def _useful_subtree(self):
        """A subtree whose split separates the classes perfectly."""
        left = LeafNode(np.array([1.0, 0.0]), training_weight=10.0)
        right = LeafNode(np.array([0.0, 1.0]), training_weight=10.0)
        return InternalNode(
            0, split_point=0.0, left=left, right=right,
            training_weight=20.0, training_distribution=np.array([0.5, 0.5]),
        )

    def test_useless_split_is_collapsed(self):
        pruned, collapsed = pessimistic_prune(self._noisy_subtree())
        assert collapsed == 1
        assert isinstance(pruned, LeafNode)

    def test_useful_split_is_kept(self):
        pruned, collapsed = pessimistic_prune(self._useful_subtree())
        assert collapsed == 0
        assert isinstance(pruned, InternalNode)

    def test_leaf_is_untouched(self):
        leaf = LeafNode(np.array([0.7, 0.3]), training_weight=5.0)
        pruned, collapsed = pessimistic_prune(leaf)
        assert pruned is leaf and collapsed == 0

    def test_pruning_never_reduces_training_accuracy_dramatically(self, small_uncertain):
        unpruned = TreeBuilder(post_prune=False).build(small_uncertain).tree
        pruned = TreeBuilder(post_prune=True).build(small_uncertain).tree
        assert pruned.n_nodes <= unpruned.n_nodes
        assert pruned.accuracy(small_uncertain) >= unpruned.accuracy(small_uncertain) - 0.15

    def test_overfitted_tree_shrinks_on_noisy_labels(self, rng):
        """Random labels cannot be learnt; post-pruning should shrink the tree."""
        attrs = [Attribute.numerical("x")]
        tuples = [
            UncertainTuple(
                [SampledPdf.point(float(rng.normal()))], "a" if rng.random() < 0.5 else "b"
            )
            for _ in range(60)
        ]
        data = UncertainDataset(attrs, tuples)
        unpruned = TreeBuilder(post_prune=False, min_split_weight=1.0).build(data).tree
        pruned = TreeBuilder(post_prune=True, min_split_weight=1.0).build(data).tree
        assert pruned.n_nodes < unpruned.n_nodes
