"""Property-based tests (hypothesis) on the library's core invariants.

These tests stress the invariants listed in DESIGN.md §6 with randomly
generated pdfs, class-count configurations and small datasets:

* pdfs remain proper distributions under construction and truncation;
* dispersion measures are bounded and behave like impurities;
* the Eq. 3 / Eq. 4 interval lower bounds never exceed the dispersion of any
  split inside the interval;
* classification output is always a probability distribution and fractional
  mass is conserved;
* all pruning strategies find splits of identical dispersion (safe pruning).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SampledPdf, UncertainDataset, UncertainTuple, Attribute
from repro.core.dispersion import EntropyMeasure, GiniMeasure
from repro.core.splits import build_contexts
from repro.core.stats import SplitSearchStats
from repro.core.strategies import STRATEGY_NAMES, get_strategy
from repro.core.tree import DecisionTree, InternalNode, LeafNode

# ---------------------------------------------------------------------------
# strategies (generators)
# ---------------------------------------------------------------------------

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
positive_masses = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False)


@st.composite
def sampled_pdfs(draw, max_points: int = 12):
    n = draw(st.integers(min_value=1, max_value=max_points))
    xs = draw(
        st.lists(finite_floats, min_size=n, max_size=n, unique=True)
    )
    masses = draw(st.lists(positive_masses, min_size=n, max_size=n))
    return SampledPdf(xs, masses)


@st.composite
def count_triples(draw, max_classes: int = 5):
    n_classes = draw(st.integers(min_value=2, max_value=max_classes))
    def counts():
        return draw(
            st.lists(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                min_size=n_classes, max_size=n_classes,
            )
        )
    return np.array(counts()), np.array(counts()), np.array(counts())


@st.composite
def small_uncertain_datasets(draw):
    """2-class, 1-attribute datasets of 4-12 tuples with small discrete pdfs."""
    n_tuples = draw(st.integers(min_value=4, max_value=12))
    tuples = []
    for i in range(n_tuples):
        pdf = draw(sampled_pdfs(max_points=5))
        label = "a" if draw(st.booleans()) else "b"
        tuples.append(UncertainTuple([pdf], label=label))
    # Ensure both classes appear.
    if len({t.label for t in tuples}) < 2:
        tuples[0] = UncertainTuple([draw(sampled_pdfs(max_points=5))], label="a")
        tuples[1] = UncertainTuple([draw(sampled_pdfs(max_points=5))], label="b")
    return UncertainDataset([Attribute.numerical("x")], tuples, class_labels=("a", "b"))


# ---------------------------------------------------------------------------
# pdf invariants
# ---------------------------------------------------------------------------


class TestPdfProperties:
    @given(sampled_pdfs())
    @settings(max_examples=60, deadline=None)
    def test_masses_sum_to_one_and_cdf_monotone(self, pdf):
        assert pdf.masses.sum() == pytest.approx(1.0)
        assert np.all(np.diff(pdf.cumulative) >= -1e-12)
        assert pdf.low <= pdf.mean() <= pdf.high

    @given(sampled_pdfs(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_split_conserves_mass_and_mean(self, pdf, fraction):
        z = pdf.low + fraction * (pdf.high - pdf.low)
        p_left, left, right = pdf.split_at(z)
        assert 0.0 <= p_left <= 1.0
        recomposed_mass = 0.0
        recomposed_mean = 0.0
        if left is not None:
            assert left.masses.sum() == pytest.approx(1.0)
            recomposed_mass += p_left
            recomposed_mean += p_left * left.mean()
        if right is not None:
            assert right.masses.sum() == pytest.approx(1.0)
            recomposed_mass += 1.0 - p_left
            recomposed_mean += (1.0 - p_left) * right.mean()
        assert recomposed_mass == pytest.approx(1.0)
        assert recomposed_mean == pytest.approx(pdf.mean(), rel=1e-6, abs=1e-6)

    @given(sampled_pdfs(), finite_floats, finite_floats)
    @settings(max_examples=60, deadline=None)
    def test_prob_between_is_monotone_in_interval_width(self, pdf, a, b):
        low, high = min(a, b), max(a, b)
        narrow = pdf.prob_between(low, high)
        wide = pdf.prob_between(low - 1.0, high + 1.0)
        assert -1e-12 <= narrow <= wide + 1e-12 <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# dispersion invariants
# ---------------------------------------------------------------------------


class TestDispersionProperties:
    @given(count_triples())
    @settings(max_examples=80, deadline=None)
    def test_entropy_bound_below_any_interior_split(self, triple):
        n_c, k_c, m_c = triple
        measure = EntropyMeasure()
        bound = measure.interval_lower_bound(n_c, k_c, m_c)
        totals = n_c + k_c + m_c
        rng = np.random.default_rng(0)
        for _ in range(10):
            left = n_c + rng.random(k_c.size) * k_c
            value = measure.split_dispersion_batch(left[None, :], totals)[0]
            assert bound <= value + 1e-7

    @given(count_triples())
    @settings(max_examples=80, deadline=None)
    def test_gini_bound_below_any_interior_split(self, triple):
        n_c, k_c, m_c = triple
        measure = GiniMeasure()
        bound = measure.interval_lower_bound(n_c, k_c, m_c)
        totals = n_c + k_c + m_c
        rng = np.random.default_rng(1)
        for _ in range(10):
            left = n_c + rng.random(k_c.size) * k_c
            value = measure.split_dispersion_batch(left[None, :], totals)[0]
            assert bound <= value + 1e-7

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=2, max_size=6)
    )
    @settings(max_examples=80, deadline=None)
    def test_node_dispersion_bounded(self, counts):
        counts = np.array(counts)
        entropy = EntropyMeasure().node_dispersion(counts)
        gini = GiniMeasure().node_dispersion(counts)
        assert 0.0 <= entropy <= np.log2(counts.size) + 1e-9
        assert 0.0 <= gini <= 1.0


# ---------------------------------------------------------------------------
# tree / strategy invariants
# ---------------------------------------------------------------------------


class TestTreeProperties:
    @given(small_uncertain_datasets())
    @settings(max_examples=25, deadline=None)
    def test_safe_pruning_on_random_datasets(self, dataset):
        contexts = build_contexts(dataset.tuples, [0], dataset.class_labels)
        measure = EntropyMeasure()
        values = []
        for name in STRATEGY_NAMES:
            result = get_strategy(name).find_best_split(contexts, measure, SplitSearchStats())
            values.append(result.dispersion)
        finite = [v for v in values if v != float("inf")]
        if finite:
            assert max(values) - min(values) < 1e-9
        else:
            assert all(v == float("inf") for v in values)

    @given(small_uncertain_datasets())
    @settings(max_examples=20, deadline=None)
    def test_classification_is_a_distribution(self, dataset):
        from repro.core import TreeBuilder

        tree = TreeBuilder(strategy="UDT-GP", min_split_weight=0.5).build(dataset).tree
        for item in dataset:
            probabilities = tree.classify(item)
            assert probabilities.shape == (2,)
            assert probabilities.sum() == pytest.approx(1.0)
            assert np.all(probabilities >= -1e-12)

    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=2),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_two_leaf_tree_output_is_convex_combination(self, leaf_probs, mass_left):
        left = LeafNode(np.array([leaf_probs[0], 1 - leaf_probs[0] / 2]))
        right = LeafNode(np.array([leaf_probs[1], 1 - leaf_probs[1] / 2]))
        root = InternalNode(0, split_point=0.0, left=left, right=right)
        tree = DecisionTree(root, [Attribute.numerical("x")], ["a", "b"])
        if mass_left in (0.0, 1.0):
            return
        pdf = SampledPdf([-1.0, 1.0], [mass_left, 1.0 - mass_left])
        result = tree.classify(UncertainTuple([pdf]))
        expected = mass_left * left.distribution + (1 - mass_left) * right.distribution
        expected = expected / expected.sum()
        assert result == pytest.approx(expected, rel=1e-9)
