"""Instrumentation for split search and tree construction.

The paper's efficiency study (Figs. 6 and 7) compares the pruning algorithms
both by wall-clock time and by the *number of entropy calculations* they
perform, where computing the interval lower bound (Eq. 3 / Eq. 4) is counted
as one entropy calculation because its cost is comparable.  The counters in
this module reproduce exactly that accounting and are aggregated over the
whole tree build so that a single number per algorithm can be reported.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SplitSearchStats", "BuildStats", "Timer"]


@dataclass
class SplitSearchStats:
    """Counters accumulated while searching for the best split of one node.

    Attributes
    ----------
    entropy_evaluations:
        Number of candidate split points whose dispersion was computed.
    lower_bound_evaluations:
        Number of interval lower bounds computed (Eq. 3 / Eq. 4).  The paper
        counts these together with entropy evaluations when reporting
        "entropy calculations".
    end_point_evaluations:
        Subset of ``entropy_evaluations`` spent on interval end points.
    candidate_split_points:
        Total number of candidate split points available before pruning.
    intervals_total / intervals_empty / intervals_homogeneous /
    intervals_heterogeneous:
        Interval census of the attribute domains examined.
    intervals_pruned_by_bound:
        Heterogeneous (or coarse) intervals discarded by the bounding test.
    """

    entropy_evaluations: int = 0
    lower_bound_evaluations: int = 0
    end_point_evaluations: int = 0
    candidate_split_points: int = 0
    intervals_total: int = 0
    intervals_empty: int = 0
    intervals_homogeneous: int = 0
    intervals_heterogeneous: int = 0
    intervals_pruned_by_bound: int = 0

    @property
    def total_entropy_like_calculations(self) -> int:
        """Entropy evaluations plus lower-bound evaluations (Fig. 7 metric)."""
        return self.entropy_evaluations + self.lower_bound_evaluations

    def merge(self, other: "SplitSearchStats") -> None:
        """Accumulate another stats object into this one (in place)."""
        self.entropy_evaluations += other.entropy_evaluations
        self.lower_bound_evaluations += other.lower_bound_evaluations
        self.end_point_evaluations += other.end_point_evaluations
        self.candidate_split_points += other.candidate_split_points
        self.intervals_total += other.intervals_total
        self.intervals_empty += other.intervals_empty
        self.intervals_homogeneous += other.intervals_homogeneous
        self.intervals_heterogeneous += other.intervals_heterogeneous
        self.intervals_pruned_by_bound += other.intervals_pruned_by_bound


@dataclass
class BuildStats:
    """Statistics aggregated over an entire tree construction.

    Combines the per-node split-search counters with structural information
    about the resulting tree and the elapsed wall-clock time.
    """

    split_search: SplitSearchStats = field(default_factory=SplitSearchStats)
    nodes_expanded: int = 0
    leaves_created: int = 0
    nodes_post_pruned: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total_entropy_like_calculations(self) -> int:
        """Entropy plus lower-bound evaluations over the whole build."""
        return self.split_search.total_entropy_like_calculations

    def record_node(self, stats: SplitSearchStats) -> None:
        """Fold the stats of one internal node's split search into the total."""
        self.split_search.merge(stats)
        self.nodes_expanded += 1

    def record_leaf(self) -> None:
        """Record the creation of a leaf node."""
        self.leaves_created += 1

    def record_post_prune(self, n_subtrees_collapsed: int) -> None:
        """Record post-pruning work (number of subtrees replaced by leaves)."""
        self.nodes_post_pruned += n_subtrees_collapsed

    def summary(self) -> dict[str, float]:
        """Flat dictionary view used by the benchmark reports."""
        return {
            "entropy_evaluations": self.split_search.entropy_evaluations,
            "lower_bound_evaluations": self.split_search.lower_bound_evaluations,
            "total_entropy_like_calculations": self.total_entropy_like_calculations,
            "candidate_split_points": self.split_search.candidate_split_points,
            "intervals_total": self.split_search.intervals_total,
            "intervals_pruned_by_bound": self.split_search.intervals_pruned_by_bound,
            "nodes_expanded": self.nodes_expanded,
            "leaves_created": self.leaves_created,
            "nodes_post_pruned": self.nodes_post_pruned,
            "elapsed_seconds": self.elapsed_seconds,
        }


class Timer:
    """Minimal context manager measuring elapsed wall-clock time in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start
