"""Micro-batching inference engine with an LRU prediction cache.

The paper's efficiency story (Figs. 6-7) is about amortising per-tuple pdf
work; this module is the serving-side analogue.  Concurrent callers submit
single rows (or small arrays) through :meth:`InferenceEngine.predict_proba`;
a background coalescer thread drains the queue and issues **one** columnar
``predict_proba`` call per tick for all rows addressed to the same model, so
the per-call costs (spec conversion set-up, pdf store construction, the tree
walk dispatch) are paid once per batch instead of once per row.

Guarantees:

* **bit-identical results** — the batch path of
  :meth:`repro.core.tree.DecisionTree.classify_batch` processes every row
  independently, so coalescing arbitrary requests into one call returns
  exactly the probabilities that ``load_model(path).predict_proba(rows)``
  would (property-tested in ``tests/property/test_serving_equivalence.py``);
* **isolation** — requests are validated against the model's feature count
  *before* enqueueing, so one malformed request can never fail a batch it
  shares with well-formed ones;
* **freshness** — the per-model cache is invalidated whenever the registry
  hot-reloads the model underneath it;
* **no dead work** — a request that exceeds ``request_timeout_s`` while
  still queued is cancelled: the coalescer drops it from the queue before
  batching, so abandoned rows are never classified — the serving-side
  analogue of the paper's never-pay-for-work-that-cannot-change-the-answer
  pruning (counted in the ``requests_abandoned`` metric).  (Cancellation is
  deadline-driven; the stdlib HTTP layer cannot observe a client that
  disconnects mid-wait, so an aborted connection's rows are dropped only
  once its deadline lapses.);
* **overload sheds, it does not collapse** — the queue is bounded by
  ``max_queue_rows`` (default ``8 * max_batch``); when it is full new
  requests are rejected *at enqueue time* with a 429
  :class:`~repro.exceptions.ServingError` carrying a ``retry_after`` hint,
  so sustained overload turns into fast rejections instead of a spiral in
  which every queued request times out while the worker burns CPU on rows
  nobody will read;
* **fairness across models** — besides the shared bound, every model has an
  admission quota (``max_queue_rows_per_model``, default half of
  ``max_queue_rows``): a traffic spike on one hot model 429s against its
  own quota while requests for other models keep being admitted.  The
  per-model backlog and rejection counts are visible in ``/metrics``
  (``queue.rows_by_model``, ``requests_rejected_by_model``).

Tuning knobs: ``max_batch`` (rows per coalesced call), ``max_wait_ms`` (how
long the coalescer lingers for stragglers once a request is queued),
``max_queue_rows`` / ``max_queue_rows_per_model`` (admission-control
bounds), ``request_timeout_s``,
``cache_size`` (LRU entries per model) and ``cache_decimals``.  Cache keys
are the exact feature bytes by default, which is what keeps the bit-identical
guarantee unconditional; setting ``cache_decimals`` to an integer instead
rounds the features first, trading that exactness for cache hits on rows
that differ only by float jitter below ``10^-decimals``.  Passing a
:class:`~repro.serve.pool.WorkerPool` as ``pool`` shards every coalesced
batch across worker processes (``repro serve --workers N``); the engine
owns the pool and closes it on shutdown.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict, deque

import numpy as np

from repro.api.spec import first_non_finite_row
from repro.exceptions import ServingError, TreeError
from repro.obs.log import get_logger
from repro.obs.trace import NO_TRACE
from repro.serve.metrics import ServingMetrics
from repro.serve.registry import ModelRegistry, json_scalars

__all__ = ["InferenceEngine", "PREDICT_ENGINES", "invoke_model"]

_log = get_logger(__name__)


def invoke_model(model, matrix: np.ndarray, predict_engine: str) -> np.ndarray:
    """One in-process batch classification of ``matrix`` with ``model``.

    The single definition of both predict paths — ``columnar`` (one
    vectorised tree descent for the whole batch) and ``tuples`` (the
    per-row recursive walk kept for benchmarking the coalescing win) —
    shared by the engine and by the worker-pool processes, so the two
    backends cannot drift apart.  Both paths go through the estimator, so
    single trees and forests (whose ``predict_proba`` soft-votes over the
    member trees) serve through the same definition.
    """
    if predict_engine == "columnar":
        return model.predict_proba(matrix)
    dataset = model._prepare_eval(model._coerce_eval(matrix))
    return model._classify_rowwise(dataset)

#: Predict-time engines: ``columnar`` classifies the coalesced batch with one
#: vectorised tree descent; ``tuples`` walks the tree per row (the pre-batch
#: behaviour, kept for benchmarking the coalescing win).
PREDICT_ENGINES = ("columnar", "tuples")


class _Pending:
    """One enqueued request: rows in, per-row probabilities (or an error) out.

    Carries the model snapshot the rows were validated against, so the
    coalescer serves the request with exactly that model even if the
    registry hot-reloads the archive while the request sits in the queue.

    ``cancelled`` is set (under the engine's condition lock) when the caller
    stops waiting; a cancelled entry is dropped by ``_take_batch`` instead
    of being classified.  ``taken`` is set when the coalescer claims the
    entry for a batch — from that point cancellation can no longer prevent
    the work, only the delivery.

    ``batch_key`` partitions the queue into compatible work: ``None`` for
    plain probability requests, ``("votes", members_tuple)`` for member-vote
    requests — only entries with equal keys (and the same model snapshot)
    coalesce into one batch.  ``trace`` is the caller's request trace (or
    :data:`~repro.obs.trace.NO_TRACE`); the coalescer records queue-wait /
    batch-assembly / inference spans into it after serving the batch.
    """

    __slots__ = (
        "rows",
        "model",
        "event",
        "result",
        "error",
        "cancelled",
        "taken",
        "batch_key",
        "trace",
        "enqueued_wall",
        "enqueued_perf",
        "taken_perf",
    )

    def __init__(self, rows: np.ndarray, model, batch_key=None, trace=NO_TRACE) -> None:
        self.rows = rows
        self.model = model
        self.event = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        self.cancelled = False
        self.taken = False
        self.batch_key = batch_key
        self.trace = trace if trace is not None else NO_TRACE
        self.enqueued_wall = 0.0
        self.enqueued_perf = 0.0
        self.taken_perf = 0.0


class InferenceEngine:
    """Coalescing prediction front-end over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        max_queue_rows: "int | None" = None,
        max_queue_rows_per_model: "int | None" = None,
        cache_size: int = 1024,
        cache_decimals: "int | None" = None,
        predict_engine: str = "columnar",
        request_timeout_s: float = 30.0,
        pool=None,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if max_batch < 1:
            raise ServingError(f"max_batch must be at least 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ServingError(f"max_wait_ms must be non-negative, got {max_wait_ms}")
        if max_queue_rows is None:
            max_queue_rows = 8 * max_batch
        if max_queue_rows < 1:
            raise ServingError(
                f"max_queue_rows must be at least 1, got {max_queue_rows}"
            )
        if max_queue_rows_per_model is None:
            # Half the shared budget: one hot model can never starve the
            # admission of every other model, yet a single-model deployment
            # still gets a usefully deep queue.
            max_queue_rows_per_model = max(1, max_queue_rows // 2)
        if max_queue_rows_per_model < 1:
            raise ServingError(
                f"max_queue_rows_per_model must be at least 1, "
                f"got {max_queue_rows_per_model}"
            )
        if cache_size < 0:
            raise ServingError(f"cache_size must be non-negative, got {cache_size}")
        if cache_decimals is not None and (
            isinstance(cache_decimals, bool)
            or not isinstance(cache_decimals, int)
            or cache_decimals < 0
        ):
            raise ServingError(
                f"cache_decimals must be None or a non-negative integer, "
                f"got {cache_decimals!r}"
            )
        if predict_engine not in PREDICT_ENGINES:
            raise ServingError(
                f"unknown predict engine {predict_engine!r}; expected one of {PREDICT_ENGINES}"
            )
        if request_timeout_s <= 0:
            # Zero or negative would 504 every request the instant it was
            # enqueued — a broken server that looks configured.
            raise ServingError(
                f"request_timeout_s must be positive, got {request_timeout_s}"
            )
        self.registry = registry
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue_rows = max_queue_rows
        self.max_queue_rows_per_model = max_queue_rows_per_model
        self.cache_size = cache_size
        self.cache_decimals = cache_decimals
        self.predict_engine = predict_engine
        self.request_timeout_s = request_timeout_s
        self.pool = pool
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.metrics.set_pool_workers(getattr(pool, "n_workers", 0) if pool else 0)
        if pool is not None and getattr(pool, "metrics", None) is None:
            pool.metrics = self.metrics
        self._condition = threading.Condition()
        self._queue: deque = deque()  # (model_name, _Pending) in arrival order
        # Per-model and total queued-row counters, maintained on enqueue /
        # take / cancel so the linger loop and admission control are O(1)
        # instead of rescanning the whole queue on every wakeup.
        self._queued_rows: dict[str, int] = {}
        self._total_queued_rows = 0
        # Suggested client back-off when shedding: roughly one coalescer
        # linger period, floored so the header never rounds to "now".
        self._retry_after_s = max(0.1, 2.0 * max_wait_ms / 1e3)
        self._closed = False
        self.metrics.register_gauge("rows", lambda: self._total_queued_rows)
        self.metrics.register_gauge("max_rows", lambda: self.max_queue_rows)
        self.metrics.register_gauge(
            "max_rows_per_model", lambda: self.max_queue_rows_per_model
        )
        # Per-model backlog gauge: a dict snapshot of the O(1) counters the
        # quota reads, so /metrics shows exactly who is filling the queue.
        self.metrics.register_gauge("rows_by_model", lambda: dict(self._queued_rows))
        # Per-model LRU caches plus a weakref to the model they were filled
        # from, so a registry hot-reload invalidates stale predictions.  A
        # weakref identity check cannot be fooled by CPython recycling a
        # collected model's id() for a later model object.
        self._cache_lock = threading.Lock()
        self._caches: dict[str, OrderedDict] = {}
        self._cache_markers: dict[str, "weakref.ref"] = {}
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-coalescer", daemon=True
        )
        self._worker.start()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the coalescer thread (outstanding requests still complete).

        Closes the worker pool too, if one was attached — the engine owns
        whatever backend executes its batches.
        """
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        self._worker.join(timeout=5.0)
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request path --------------------------------------------------------

    def _as_matrix(self, rows, n_features: int) -> np.ndarray:
        try:
            matrix = np.asarray(rows, dtype=float)
        except (TypeError, ValueError) as exc:
            raise ServingError(f"rows are not numeric: {exc}", status=400) from exc
        if matrix.ndim == 1:
            if matrix.size == 0:
                matrix = matrix.reshape(0, n_features)
            elif matrix.size == n_features:
                matrix = matrix.reshape(1, -1)
            else:
                raise ServingError(
                    f"a single row needs {n_features} features, got {matrix.size}",
                    status=400,
                )
        if matrix.ndim != 2:
            raise ServingError(
                f"rows must be a 2-D array of shape (n, {n_features}), got ndim={matrix.ndim}",
                status=400,
            )
        if matrix.shape[0] and matrix.shape[1] != n_features:
            # Validated here, before enqueueing: a wrong-width request must
            # fail alone, never the coalesced batch it would have joined.
            raise ServingError(
                f"rows have {matrix.shape[1]} features, model expects {n_features}",
                status=400,
            )
        bad = first_non_finite_row(matrix)
        if bad is not None:
            # Same pre-enqueue isolation guarantee as the shape checks: a
            # NaN/Inf cell would otherwise be classified into garbage
            # probabilities — and worse, cached under its exact bytes.
            raise ServingError(
                f"rows contain non-finite feature values (NaN or Inf), "
                f"first at row {bad}",
                status=400,
            )
        return matrix

    def _cache_key(self, row: np.ndarray):
        if self.cache_decimals is None:
            # Exact bytes: only a bit-for-bit identical row can hit, so the
            # cache can never substitute one row's probabilities for another's.
            return row.tobytes()
        return tuple(round(float(value), self.cache_decimals) for value in row)

    def _cache_for(self, name: str, model) -> "OrderedDict | None":
        if self.cache_size == 0:
            return None
        with self._cache_lock:
            marker = self._cache_markers.get(name)
            if marker is None or marker() is not model:
                # The registry reloaded the model: drop stale predictions.
                self._caches[name] = OrderedDict()
                self._cache_markers[name] = weakref.ref(model)
            return self._caches.setdefault(name, OrderedDict())

    def _cache_put(self, cache: OrderedDict, key: tuple, value: np.ndarray) -> None:
        entry = np.array(value, copy=True)
        entry.flags.writeable = False
        with self._cache_lock:
            cache[key] = entry
            cache.move_to_end(key)
            while len(cache) > self.cache_size:
                cache.popitem(last=False)

    def predict_proba(self, model_name: str, rows, *, trace=NO_TRACE) -> np.ndarray:
        """Class probabilities ``(n, n_classes)`` for ``rows``, micro-batched.

        Blocks until the coalescer has served the request.  Raises
        :class:`~repro.exceptions.ServingError` for unknown models, malformed
        rows, engine shutdown, and coalescer timeouts.
        """
        _, probabilities = self._predict_with_model(model_name, rows, trace=trace)
        return probabilities

    def _predict_with_model(self, model_name: str, rows, *, trace=NO_TRACE):
        """``(model, probabilities)`` — one model snapshot drives everything.

        The snapshot fetched here is validated against, cached against, and
        (via :class:`_Pending`) classified with; a registry hot reload that
        lands mid-request can therefore never mix two models' outputs.
        """
        if self._closed:
            raise ServingError("the inference engine is closed", status=503)
        model = self.registry.get(model_name)
        self.metrics.set_model_generation(
            model_name, getattr(model, "update_generation_", 0) or 0
        )
        n_features = int(model.n_features_in_)
        matrix = self._as_matrix(rows, n_features)
        n_rows = matrix.shape[0]
        if n_rows == 0:
            return model, np.zeros((0, len(model.classes_)))

        cache = self._cache_for(model_name, model)
        results: list = [None] * n_rows
        miss_positions = list(range(n_rows))
        keys: list = []
        if cache is not None:
            lookup_wall = time.time()
            lookup_perf = time.perf_counter()
            keys = [self._cache_key(row) for row in matrix]
            hits = 0
            miss_positions = []
            with self._cache_lock:
                for position, key in enumerate(keys):
                    cached = cache.get(key)
                    if cached is not None:
                        cache.move_to_end(key)
                        results[position] = cached
                        hits += 1
                    else:
                        miss_positions.append(position)
            self.metrics.record_cache(hits=hits, misses=len(miss_positions))
            if trace:
                trace.record(
                    "cache_lookup",
                    start_s=lookup_wall,
                    duration_s=time.perf_counter() - lookup_perf,
                    model=model_name,
                    tags={"hits": hits, "misses": len(miss_positions)},
                )

        if miss_positions:
            pending = _Pending(matrix[miss_positions], model, trace=trace)
            self._enqueue_and_wait(model_name, pending)
            assert pending.result is not None
            for offset, position in enumerate(miss_positions):
                results[position] = pending.result[offset]
                if cache is not None:
                    self._cache_put(cache, keys[position], pending.result[offset])
        return model, np.stack(results)

    def _enqueue_and_wait(self, model_name: str, pending: _Pending) -> None:
        """Admit ``pending`` into the queue and block until it is served.

        Shared by the probability and member-vote paths: admission control
        (shared bound + per-model quota, both shedding with 429 at enqueue
        time), the timeout/cancellation dance, and error delivery are
        identical for both kinds of batch.
        """
        n_missing = len(pending.rows)
        with self._condition:
            if self._closed:
                raise ServingError("the inference engine is closed", status=503)
            if (
                self._total_queued_rows
                and self._total_queued_rows + n_missing > self.max_queue_rows
            ):
                # Admission control: shed at enqueue time.  An empty
                # queue admits any request (even one larger than the
                # bound — it is served whole, exactly as before), so the
                # bound throttles concurrency, never request size.
                self.metrics.record_rejected(n_missing, model=model_name)
                raise ServingError(
                    f"inference queue is full ({self._total_queued_rows} rows "
                    f"queued, max_queue_rows={self.max_queue_rows}); retry later",
                    status=429,
                    retry_after=self._retry_after_s,
                )
            model_queued = self._queued_rows.get(model_name, 0)
            if (
                model_queued
                and model_queued + n_missing > self.max_queue_rows_per_model
            ):
                # Per-model quota: one hot model exhausting its share is
                # shed while other models' admission budget stays open.
                # The same empty-queue rule applies per model, so the
                # quota throttles a model's concurrency, never its
                # request size.
                self.metrics.record_rejected(n_missing, model=model_name)
                raise ServingError(
                    f"inference queue for model {model_name!r} is full "
                    f"({model_queued} rows queued, "
                    f"max_queue_rows_per_model={self.max_queue_rows_per_model}); "
                    "retry later",
                    status=429,
                    retry_after=self._retry_after_s,
                )
            pending.enqueued_wall = time.time()
            pending.enqueued_perf = time.perf_counter()
            self._queue.append((model_name, pending))
            self._adjust_queued(model_name, n_missing)
            self._condition.notify_all()
        if not pending.event.wait(self.request_timeout_s):
            if self._cancel(model_name, pending):
                raise ServingError(
                    f"inference timed out after {self.request_timeout_s:.1f}s "
                    "(request abandoned before classification)",
                    status=504,
                )
            # The coalescer claimed the batch in the same instant the
            # timeout fired; the rows are being classified, but this
            # caller is no longer listening for the answer.
            raise ServingError(
                f"inference timed out after {self.request_timeout_s:.1f}s", status=504
            )
        if pending.error is not None:
            error = pending.error
            if isinstance(error, ServingError):
                raise error
            raise ServingError(str(error), status=400) from error

    def predict(self, model_name: str, rows, *, trace=NO_TRACE):
        """``(labels, probabilities)`` for ``rows``.

        Labels are the argmax of the probabilities over the model's
        ``classes_`` — the same reduction ``predict`` applies offline.
        """
        labels, probabilities, _ = self.predict_full(model_name, rows, trace=trace)
        return labels, probabilities

    def predict_full(self, model_name: str, rows, *, trace=NO_TRACE):
        """``(labels, probabilities, classes)`` from one model snapshot.

        ``classes`` are JSON-ready scalars in probability-column order; all
        three pieces come from the same model object, so a concurrent hot
        reload cannot pair one model's probabilities with another's labels.
        """
        model, probabilities = self._predict_with_model(model_name, rows, trace=trace)
        classes = np.asarray(model.classes_)
        labels = classes[np.argmax(probabilities, axis=1)] if len(probabilities) \
            else classes[:0]
        return labels, probabilities, json_scalars(model.classes_)

    def predict_votes(self, model_name: str, rows, members=None, *, trace=NO_TRACE):
        """``(votes, classes, n_members_total)`` for a forest's member shard.

        ``votes`` is the ``(n_members, n_rows, n_classes)`` stack of
        per-member vote matrices (``members`` restricts it to those member
        indices; ``None`` means every member), and ``n_members_total`` is
        the full forest's member count — the divisor a fan-out reducer
        needs.  Vote requests ride the same coalescer as probability
        requests: per-member classification is row-independent, so stacking
        concurrent shard requests for the *same member subset* into one
        ``member_votes`` call returns bit-identical matrices while paying
        the per-call setup once — exactly the economics that made routed
        fan-out the hot path worth batching.  Member indices are resolved
        *before* enqueueing, so a request naming an out-of-range member
        fails alone (400), never the batch it would have joined.  The
        prediction cache is not consulted: caching partial votes would only
        duplicate the reduced results cached upstream.
        """
        if self._closed:
            raise ServingError("the inference engine is closed", status=503)
        model = self.registry.get(model_name)
        self.metrics.set_model_generation(
            model_name, getattr(model, "update_generation_", 0) or 0
        )
        if not hasattr(model, "member_votes"):
            raise ServingError(
                f"model {model_name!r} is not a forest; member votes are only "
                "defined for kind: \"forest\" models",
                status=400,
            )
        matrix = self._as_matrix(rows, int(model.n_features_in_))
        try:
            selected = tuple(model._resolve_members(members))
        except TreeError as exc:
            raise ServingError(str(exc), status=400) from exc
        classes = json_scalars(model.classes_)
        n_members_total = len(model.trees_)
        if matrix.shape[0] == 0 or not selected:
            # Nothing to classify: answer from the snapshot without waking
            # the coalescer (shape matches member_votes exactly).
            return (
                np.zeros((len(selected), matrix.shape[0], len(model.classes_))),
                classes,
                n_members_total,
            )
        pending = _Pending(
            matrix, model, batch_key=("votes", selected), trace=trace
        )
        self._enqueue_and_wait(model_name, pending)
        assert pending.result is not None
        return pending.result, classes, n_members_total

    # -- the coalescer -------------------------------------------------------

    def _adjust_queued(self, name: str, delta: int) -> None:
        """Update the per-model and total queued-row counters (locked)."""
        if not delta:
            return
        self._total_queued_rows += delta
        remaining = self._queued_rows.get(name, 0) + delta
        if remaining > 0:
            self._queued_rows[name] = remaining
        else:
            self._queued_rows.pop(name, None)

    def _cancel(self, name: str, pending: _Pending) -> bool:
        """Cancel a queued request; ``True`` if it was still unclaimed.

        A cancelled entry stays in the deque but stops counting towards the
        queued-row totals immediately (so admission control frees its slot
        and the linger loop stops waiting for it); ``_take_batch`` drops it
        before the next model invocation, so its rows are never classified.
        """
        with self._condition:
            if pending.taken or pending.event.is_set():
                return False
            pending.cancelled = True
            self._adjust_queued(name, -len(pending.rows))
            self.metrics.record_abandoned(len(pending.rows))
            self._condition.notify_all()
            return True

    def _take_batch(self, name: str, model, batch_key) -> list:
        """Pop queued requests for ``name`` up to ``max_batch`` rows (locked).

        Only requests validated against the same ``model`` snapshot *and*
        carrying the same ``batch_key`` (probabilities vs one member-vote
        subset) join the batch; requests that raced a hot reload wait for
        the next tick and are then served by their own snapshot.  Cancelled
        entries are dropped here — abandoned work never reaches ``_invoke``
        (their row counters were already released by :meth:`_cancel`).
        """
        taken: list = []
        kept: deque = deque()
        total = 0
        now_perf = time.perf_counter()
        for qname, pending in self._queue:
            if pending.cancelled:
                continue
            fits = not taken or total + len(pending.rows) <= self.max_batch
            if (
                qname == name
                and pending.model is model
                and pending.batch_key == batch_key
                and fits
            ):
                pending.taken = True
                pending.taken_perf = now_perf
                taken.append(pending)
                total += len(pending.rows)
            else:
                kept.append((qname, pending))
        self._queue = kept
        self._adjust_queued(name, -total)
        return taken

    def _invoke(self, model_name: str, model, matrix: np.ndarray) -> np.ndarray:
        if self.pool is not None:
            # The batch was validated (and will be cached and labelled)
            # against *this* snapshot, so the workers must serve exactly it.
            # Preferred path: the registry publishes the snapshot once as a
            # shared-memory segment (archive JSON + the matrix the nodes
            # view into) and workers attach by name + generation — zero
            # archive I/O, one physical copy of the matrix for the whole
            # pool.  Acquiring the segment pins it for this batch: a hot
            # reload retiring it can unlink the memory only after we
            # release (the remap's drain step).
            snapshot = self.registry.snapshot_token(model_name, model)
            segment = None
            shared = getattr(self.registry, "shared_segment", None)
            if shared is not None:
                segment = shared(model_name, model)
            if snapshot is not None or segment is not None:
                path, token = snapshot if snapshot is not None else (None, None)
                if path is None:
                    path = segment.spec["model"]
                try:
                    result = self.pool.predict_proba(
                        path,
                        matrix,
                        expected_token=token,
                        segment=segment.spec if segment is not None else None,
                    )
                except Exception:
                    # A broken pool (worker OOM-killed, executor shut down)
                    # must degrade the server to in-process serving, not
                    # turn every subsequent request into an error: the
                    # snapshot in hand can always answer correctly.
                    result = None
                finally:
                    if segment is not None:
                        segment.release()
                if result is not None:
                    return result
            # Refused snapshot (token and segment both stale), pool
            # breakage, or a reload that beat the queue: the batch is
            # served in-process — visible in the pool-utilisation metrics
            # as a fallback.
            self.metrics.record_pool_fallback()
        return invoke_model(model, matrix, self.predict_engine)

    def _drop_cancelled_head(self) -> None:
        """Discard cancelled entries at the queue head (locked).

        Keeps a dead request from steering the linger loop: the next tick
        must batch for a model somebody is still waiting on.
        """
        while self._queue and self._queue[0][1].cancelled:
            self._queue.popleft()

    def _run(self) -> None:
        while True:
            with self._condition:
                self._drop_cancelled_head()
                while not self._queue and not self._closed:
                    self._condition.wait()
                    self._drop_cancelled_head()
                if not self._queue:
                    return  # closed and drained
                name = self._queue[0][0]
                model = self._queue[0][1].model
                batch_key = self._queue[0][1].batch_key
                linger_wall = time.time()
                linger_perf = time.perf_counter()
                if self.max_wait_ms > 0 and self.max_batch > 1:
                    # Linger for stragglers: better batches at the cost of at
                    # most max_wait_ms extra latency for the first request.
                    # The O(1) counter excludes cancelled rows, so the loop
                    # never waits for a batch made of work nobody wants.
                    deadline = time.monotonic() + self.max_wait_ms / 1e3
                    while (
                        not self._closed
                        and self._queued_rows.get(name, 0) < self.max_batch
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._condition.wait(remaining)
                taken = self._take_batch(name, model, batch_key)
            if not taken:
                continue
            try:
                matrix = (
                    taken[0].rows
                    if len(taken) == 1
                    else np.concatenate([pending.rows for pending in taken])
                )
                assembled_perf = time.perf_counter()
                invoke_wall = time.time()
                if batch_key is None:
                    output = self._invoke(name, model, matrix)
                else:
                    # A member-vote batch: one stacked classification for
                    # the shared member subset, split per request along the
                    # rows axis (axis 1 of the (members, rows, classes)
                    # stack).  Row independence keeps the split exact.
                    output = model.member_votes(matrix, members=list(batch_key[1]))
                inference_s = time.perf_counter() - assembled_perf
                self.metrics.record_batch(matrix.shape[0], model=name)
                self.metrics.record_stage("batch_wait", name, assembled_perf - linger_perf)
                self.metrics.record_stage("inference", name, inference_s)
                offset = 0
                for pending in taken:
                    count = len(pending.rows)
                    if batch_key is None:
                        pending.result = output[offset:offset + count]
                    else:
                        pending.result = output[:, offset:offset + count, :]
                    offset += count
                batch_rows = int(matrix.shape[0])
                for pending in taken:
                    queue_wait_s = pending.taken_perf - pending.enqueued_perf
                    self.metrics.record_stage("queue_wait", name, queue_wait_s)
                    trace = pending.trace
                    if trace:
                        trace.record(
                            "queue_wait",
                            start_s=pending.enqueued_wall,
                            duration_s=queue_wait_s,
                            model=name,
                            tags={"rows": len(pending.rows)},
                        )
                        trace.record(
                            "batch_assembly",
                            start_s=linger_wall,
                            duration_s=assembled_perf - linger_perf,
                            model=name,
                            tags={"batch_rows": batch_rows, "n_requests": len(taken)},
                        )
                        trace.record(
                            "inference",
                            start_s=invoke_wall,
                            duration_s=inference_s,
                            model=name,
                            tags={
                                "batch_rows": batch_rows,
                                "engine": self.predict_engine,
                                "votes": batch_key is not None,
                            },
                        )
            except BaseException as exc:  # noqa: BLE001 - delivered to callers
                for pending in taken:
                    pending.error = exc
            finally:
                for pending in taken:
                    pending.event.set()
