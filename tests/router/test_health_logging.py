"""Structured log events emitted on health-state transitions.

Every verdict flip and drain toggle must leave an auditable event —
``replica_up`` / ``replica_down`` / ``replica_draining`` /
``replica_undrained`` — carrying the replica URL, a human-readable
reason, and the consecutive-observation streak that tripped the
hysteresis.  Observations that do *not* flip the verdict must stay
silent: a damped blip is not an incident.
"""

from __future__ import annotations

import logging

import pytest

from repro.obs.log import ROOT_LOGGER
from repro.router.health import HealthChecker

URLS = ["http://replica-a:1", "http://replica-b:2"]


def make_checker(verdicts, **kwargs):
    kwargs.setdefault("probe", lambda url, timeout_s: verdicts[url])
    return HealthChecker(URLS, **kwargs)


def _events(caplog):
    """``(event, level, fields)`` for every captured repro record."""
    return [
        (record.getMessage(), record.levelname, getattr(record, "repro_fields", {}))
        for record in caplog.records
        if record.name.startswith(ROOT_LOGGER)
    ]


@pytest.fixture
def health_log(caplog):
    with caplog.at_level(logging.INFO, logger=ROOT_LOGGER):
        yield caplog


def test_first_observation_logs_a_transition(health_log):
    verdicts = {URLS[0]: True, URLS[1]: False}
    checker = make_checker(verdicts)
    checker.check_once()
    events = _events(health_log)
    assert ("replica_up", "INFO") == (events[0][0], events[0][1])
    assert events[0][2]["replica"] == URLS[0]
    assert events[0][2]["reason"] == "first observation"
    assert ("replica_down", "WARNING") == (events[1][0], events[1][1])
    assert events[1][2]["replica"] == URLS[1]


def test_replica_down_carries_streak_and_reason(health_log):
    verdicts = {url: True for url in URLS}
    checker = make_checker(verdicts, down_after=2)
    checker.check_once()
    health_log.clear()

    verdicts[URLS[0]] = False
    checker.check_once()  # damped: no event
    assert _events(health_log) == []
    checker.check_once()  # second consecutive failure flips it
    events = _events(health_log)
    assert len(events) == 1
    event, level, fields = events[0]
    assert event == "replica_down"
    assert level == "WARNING"
    assert fields["replica"] == URLS[0]
    assert fields["reason"] == "2 consecutive failures"
    assert fields["consecutive_down"] == 2
    assert fields["consecutive_up"] == 0


def test_recovery_logs_replica_up_with_success_streak(health_log):
    verdicts = {URLS[0]: False, URLS[1]: True}
    checker = make_checker(verdicts, up_after=3)
    checker.check_once()
    health_log.clear()

    verdicts[URLS[0]] = True
    checker.check_once()
    checker.check_once()
    assert _events(health_log) == []  # still damped
    checker.check_once()
    events = _events(health_log)
    assert len(events) == 1
    event, level, fields = events[0]
    assert event == "replica_up"
    assert level == "INFO"
    assert fields["reason"] == "3 consecutive successes"
    assert fields["consecutive_up"] == 3


def test_passive_failures_log_like_probe_failures(health_log):
    verdicts = {url: True for url in URLS}
    checker = make_checker(verdicts, down_after=2)
    checker.check_once()
    health_log.clear()

    checker.note_failure(URLS[1])
    checker.note_failure(URLS[1])
    events = _events(health_log)
    assert [event for event, _, _ in events] == ["replica_down"]
    assert events[0][2]["replica"] == URLS[1]


def test_drain_toggle_logs_both_directions_once(health_log):
    verdicts = {url: True for url in URLS}
    checker = make_checker(verdicts)
    checker.check_once()
    health_log.clear()

    checker.set_draining(URLS[0], True)
    checker.set_draining(URLS[0], True)  # no-op: already draining, no event
    checker.set_draining(URLS[0], False)
    events = _events(health_log)
    assert [event for event, _, _ in events] == [
        "replica_draining", "replica_undrained",
    ]
    assert events[0][2]["reason"] == "drain requested"
    assert events[0][2]["healthy"] is True
    assert events[1][2]["reason"] == "returned to service"
