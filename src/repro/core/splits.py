"""Per-attribute split-search machinery.

Finding the best split point of a numerical attribute requires, for many
candidate values ``z``, the weighted per-class tuple counts on each side of
``z`` (Definitions 5 and 6 of the paper).  :class:`AttributeSplitContext`
precomputes, for one attribute and one set of (fractional) tuples, the
per-class sorted sample positions and their cumulative weighted masses, so
that the counts for any batch of candidates are obtained with a binary
search rather than by re-integrating every pdf.

The context also exposes the interval end points ``Q_j`` (the pdf domain
boundaries, Section 5.1) and the full candidate list (every distinct pdf
sample position), which the pruning strategies consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.dataset import UncertainTuple
from repro.core.dispersion import DispersionMeasure
from repro.exceptions import SplitError

__all__ = ["AttributeSplitContext", "CandidateSplit", "build_contexts"]

#: Weighted counts below this value are treated as zero mass.
_EPS = 1e-12


@dataclass(frozen=True)
class CandidateSplit:
    """Result of a split search.

    Attributes
    ----------
    attribute_index:
        Position of the attribute in the dataset schema; ``None`` when no
        valid split exists.
    split_point:
        The numerical threshold ``z`` of the binary test ``A <= z`` (``None``
        for categorical splits and when no split exists).
    dispersion:
        Value of the dispersion measure for the chosen split (lower is
        better).
    categorical:
        ``True`` when the split is a multiway categorical split.
    """

    attribute_index: int | None
    split_point: float | None
    dispersion: float
    categorical: bool = False

    @property
    def is_valid(self) -> bool:
        return self.attribute_index is not None


class AttributeSplitContext:
    """Precomputed split-search state for one numerical attribute.

    Parameters
    ----------
    attribute_index:
        Index of the attribute within the dataset schema.
    tuples:
        The (fractional) tuples of the node being split.
    class_labels:
        Ordered class labels of the dataset; per-class arrays follow this
        order.
    """

    __slots__ = (
        "attribute_index",
        "class_labels",
        "_class_positions",
        "_class_cumulative",
        "total_counts",
        "end_points",
        "candidates",
        "all_uniform",
        "n_sample_points",
    )

    def __init__(
        self,
        attribute_index: int,
        tuples: Sequence[UncertainTuple],
        class_labels: Sequence[Hashable],
    ) -> None:
        if not tuples:
            raise SplitError("cannot build a split context for an empty tuple set")
        self.attribute_index = attribute_index
        self.class_labels = tuple(class_labels)
        label_to_index = {label: i for i, label in enumerate(self.class_labels)}
        n_classes = len(self.class_labels)

        per_class_positions: list[list[np.ndarray]] = [[] for _ in range(n_classes)]
        per_class_masses: list[list[np.ndarray]] = [[] for _ in range(n_classes)]
        end_point_set: set[float] = set()
        all_positions: list[np.ndarray] = []
        all_uniform = True
        n_sample_points = 0

        for item in tuples:
            pdf = item.pdf(attribute_index)
            if item.label is None:
                raise SplitError("training tuples must carry a class label")
            class_index = label_to_index[item.label]
            per_class_positions[class_index].append(pdf.xs)
            per_class_masses[class_index].append(pdf.masses * item.weight)
            end_point_set.add(pdf.low)
            end_point_set.add(pdf.high)
            all_positions.append(pdf.xs)
            n_sample_points += pdf.xs.size
            if pdf.kind not in ("uniform", "point"):
                all_uniform = False

        self.all_uniform = all_uniform
        self.n_sample_points = n_sample_points

        self._class_positions: list[np.ndarray] = []
        self._class_cumulative: list[np.ndarray] = []
        totals = np.zeros(n_classes)
        for class_index in range(n_classes):
            if per_class_positions[class_index]:
                positions = np.concatenate(per_class_positions[class_index])
                masses = np.concatenate(per_class_masses[class_index])
                order = np.argsort(positions, kind="stable")
                positions = positions[order]
                masses = masses[order]
                cumulative = np.cumsum(masses)
                totals[class_index] = cumulative[-1]
            else:
                positions = np.empty(0)
                cumulative = np.empty(0)
            self._class_positions.append(positions)
            self._class_cumulative.append(cumulative)
        self.total_counts = totals

        self.end_points = np.array(sorted(end_point_set))
        # Candidate split points: every distinct sample position except those
        # at or beyond the global maximum end point, which would leave the
        # "right" subset empty.
        positions_union = np.unique(np.concatenate(all_positions))
        upper = self.end_points[-1]
        self.candidates = positions_union[positions_union < upper]

    # -- count queries -------------------------------------------------------

    @property
    def n_classes(self) -> int:
        return len(self.class_labels)

    @property
    def n_candidates(self) -> int:
        return int(self.candidates.size)

    def left_counts(self, split_points: np.ndarray, *, inclusive: bool = True) -> np.ndarray:
        """Weighted per-class counts on the left of each split point.

        With ``inclusive=True`` (the default) the counts cover the mass at or
        below the split point (the ``<=`` test of the decision tree); with
        ``inclusive=False`` they cover the mass strictly below it, which the
        interval machinery uses to classify open intervals ``(a, b)``.

        Returns an array of shape ``(len(split_points), n_classes)``.
        """
        zs = np.asarray(split_points, dtype=float)
        side = "right" if inclusive else "left"
        result = np.zeros((zs.size, self.n_classes))
        for class_index in range(self.n_classes):
            positions = self._class_positions[class_index]
            if positions.size == 0:
                continue
            cumulative = self._class_cumulative[class_index]
            idx = np.searchsorted(positions, zs, side=side)
            counts = np.where(idx > 0, cumulative[np.maximum(idx - 1, 0)], 0.0)
            result[:, class_index] = counts
        return result

    def interval_counts(self, low: float, high: float) -> np.ndarray:
        """Weighted per-class counts inside the half-open interval ``(low, high]``."""
        counts = self.left_counts(np.array([low, high]))
        return np.clip(counts[1] - counts[0], 0.0, None)

    # -- dispersion evaluation -------------------------------------------------

    def evaluate(self, split_points: np.ndarray, measure: DispersionMeasure) -> np.ndarray:
        """Dispersion of the splits at each of the given points.

        The caller is responsible for counting these evaluations in its
        :class:`~repro.core.stats.SplitSearchStats`.
        """
        zs = np.asarray(split_points, dtype=float)
        if zs.size == 0:
            return np.empty(0)
        left = self.left_counts(zs)
        return measure.split_dispersion_batch(left, self.total_counts)

    def best_of(
        self, split_points: np.ndarray, measure: DispersionMeasure
    ) -> tuple[float | None, float]:
        """Best (lowest-dispersion) split among ``split_points``.

        Returns ``(split_point, dispersion)``; ``(None, inf)`` when the
        candidate list is empty.  Splits that leave one side without any
        probability mass are not meaningful partitions and are skipped.
        """
        zs = np.asarray(split_points, dtype=float)
        if zs.size == 0:
            return None, float("inf")
        left = self.left_counts(zs)
        left_sizes = left.sum(axis=1)
        total = float(self.total_counts.sum())
        valid = (left_sizes > _EPS) & (left_sizes < total - _EPS)
        if not np.any(valid):
            return None, float("inf")
        dispersion = measure.split_dispersion_batch(left, self.total_counts)
        dispersion = np.where(valid, dispersion, np.inf)
        best_index = int(np.argmin(dispersion))
        return float(zs[best_index]), float(dispersion[best_index])


def build_contexts(
    tuples: Sequence[UncertainTuple],
    numerical_attribute_indices: Sequence[int],
    class_labels: Sequence[Hashable],
) -> list[AttributeSplitContext]:
    """Build one :class:`AttributeSplitContext` per numerical attribute."""
    return [
        AttributeSplitContext(attr_index, tuples, class_labels)
        for attr_index in numerical_attribute_indices
    ]
