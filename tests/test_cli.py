"""Unit tests for the command-line interface (``python -m repro``)."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_accuracy_defaults(self):
        args = build_parser().parse_args(["accuracy"])
        assert args.dataset == "Iris"
        assert args.error_model == "gaussian"
        assert args.widths == [0.05, 0.10]

    def test_sensitivity_parameter_choices(self):
        args = build_parser().parse_args(["sensitivity", "--parameter", "w"])
        assert args.parameter == "w"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sensitivity", "--parameter", "x"])

    def test_engine_flag_on_every_experiment_command(self):
        for command in ("accuracy", "noise", "efficiency", "sensitivity"):
            args = build_parser().parse_args([command, "--engine", "tuples"])
            assert args.engine == "tuples"
            assert build_parser().parse_args([command]).engine == "columnar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "--engine", "warp-drive"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestCommands:
    def test_example_command(self, capsys):
        assert main(["example"]) == 0
        output = capsys.readouterr().out
        assert "AVG" in output and "UDT" in output
        assert "0.6667" in output and "1.0000" in output

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "JapaneseVowel" in output and "Iris" in output

    def test_accuracy_command_small(self, capsys):
        code = main(
            ["accuracy", "--dataset", "Iris", "--scale", "0.3", "--samples", "6",
             "--folds", "3", "--widths", "0.1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "AVG accuracy" in output and "Iris" in output

    def test_efficiency_command_small(self, capsys):
        code = main(
            ["efficiency", "--dataset", "Iris", "--scale", "0.25", "--samples", "8"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "UDT-ES" in output and "entropy calcs" in output

    def test_sensitivity_command_width_sweep(self, capsys):
        code = main(
            ["sensitivity", "--dataset", "Iris", "--scale", "0.25", "--samples", "8",
             "--parameter", "w"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "w" in output and "entropy calcs" in output

    def test_noise_command_small(self, capsys):
        code = main(
            ["noise", "--dataset", "Iris", "--scale", "0.3", "--samples", "6",
             "--perturbations", "0.0", "--widths", "0.0", "0.1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "UDT accuracy" in output

    def test_accuracy_command_with_tuples_engine(self, capsys):
        code = main(
            ["accuracy", "--dataset", "Iris", "--scale", "0.3", "--samples", "6",
             "--folds", "3", "--widths", "0.1", "--engine", "tuples"]
        )
        assert code == 0
        assert "AVG accuracy" in capsys.readouterr().out


@pytest.fixture
def saved_model(tmp_path):
    """A tiny fitted model archive plus matching CSV rows and expectations."""
    from repro.api import UDTClassifier
    from repro.api.spec import gaussian

    rng = np.random.default_rng(13)
    X = rng.normal(size=(40, 2))
    y = np.where(X[:, 0] + X[:, 1] > 0, "hi", "lo")
    model = UDTClassifier(spec=gaussian(w=0.1, s=6), min_split_weight=4.0).fit(X, y)
    model_path = tmp_path / "model.zip"
    model.save(model_path)
    rows = rng.normal(size=(7, 2))
    return model, model_path, rows


class TestPredictCommand:
    def _write_csv(self, path, rows, header=None):
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            if header:
                writer.writerow(header)
            writer.writerows(rows)

    def test_labels_match_offline_predict(self, saved_model, tmp_path, capsys):
        model, model_path, rows = saved_model
        data = tmp_path / "rows.csv"
        self._write_csv(data, rows)
        assert main(["predict", str(model_path), str(data)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "label"
        assert lines[1:] == list(model.predict(rows))

    def test_header_row_is_skipped(self, saved_model, tmp_path, capsys):
        model, model_path, rows = saved_model
        data = tmp_path / "rows.csv"
        self._write_csv(data, rows, header=["f0", "f1"])
        assert main(["predict", str(model_path), str(data)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[1:] == list(model.predict(rows))

    def test_proba_columns_match_offline(self, saved_model, tmp_path, capsys):
        model, model_path, rows = saved_model
        data = tmp_path / "rows.csv"
        self._write_csv(data, rows)
        assert main(["predict", str(model_path), str(data), "--proba"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "label,p_hi,p_lo"
        parsed = np.array(
            [[float(cell) for cell in line.split(",")[1:]] for line in lines[1:]]
        )
        # repr() round-trips doubles exactly, so the CSV carries every bit.
        assert np.array_equal(parsed, model.predict_proba(rows))

    def test_wrong_column_count_is_an_error(self, saved_model, tmp_path, capsys):
        # A 3-column CSV against a 2-feature model must fail loudly, not be
        # silently regrouped into 2-feature rows.
        _, model_path, _ = saved_model
        data = tmp_path / "rows.csv"
        self._write_csv(data, [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert main(["predict", str(model_path), str(data)]) == 2
        err = capsys.readouterr().err
        assert "expects exactly 2 features" in err

    def test_non_numeric_cell_is_an_error(self, saved_model, tmp_path, capsys):
        _, model_path, _ = saved_model
        data = tmp_path / "rows.csv"
        (data).write_text("1.0,2.0\n3.0,oops\n")
        assert main(["predict", str(model_path), str(data)]) == 2
        assert "non-numeric" in capsys.readouterr().err

    @pytest.mark.parametrize("cell", ["nan", "inf", "-inf"])
    def test_non_finite_cell_is_an_error(self, saved_model, tmp_path, capsys, cell):
        # float() parses "nan"/"inf", so these pass the CSV numeric check —
        # but scoring them would emit garbage probabilities; exit 2 instead.
        _, model_path, _ = saved_model
        data = tmp_path / "rows.csv"
        data.write_text(f"1.0,2.0\n3.0,{cell}\n")
        assert main(["predict", str(model_path), str(data)]) == 2
        err = capsys.readouterr().err
        assert "non-finite" in err
        assert "row 2" in err

    def test_output_file(self, saved_model, tmp_path):
        _, model_path, rows = saved_model
        data = tmp_path / "rows.csv"
        out = tmp_path / "scored.csv"
        self._write_csv(data, rows)
        assert main(
            ["predict", str(model_path), str(data), "--output", str(out)]
        ) == 0
        content = out.read_text().strip().splitlines()
        assert content[0] == "label"
        assert len(content) == 1 + len(rows)


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "--models", "models/"])
        assert args.models == "models/"
        assert args.port == 8000
        assert args.max_batch == 64
        assert args.max_wait_ms == 2.0
        assert args.max_queue_rows is None
        assert args.request_timeout == 30.0
        assert args.workers == 1
        assert args.cache_decimals is None
        assert args.predict_engine == "columnar"
        assert args.preload is False

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--models", "m", "--workers", "0"])
        args = build_parser().parse_args(["serve", "--models", "m", "--workers", "4"])
        assert args.workers == 4

    def test_overload_knobs_parse(self):
        args = build_parser().parse_args(
            ["serve", "--models", "m", "--max-queue-rows", "256",
             "--request-timeout", "2.5"]
        )
        assert args.max_queue_rows == 256
        assert args.request_timeout == 2.5

    @pytest.mark.parametrize(
        "flags",
        [
            ["--request-timeout", "0"],
            ["--request-timeout", "-3"],
            ["--cache-decimals", "-1"],
            ["--max-queue-rows", "0"],
            ["--cache-size", "-1"],
            ["--max-wait-ms", "-1"],
        ],
    )
    def test_bad_knob_values_exit_2_instead_of_starting(self, tmp_path, capsys, flags):
        # The values parse (argparse cannot know the semantics); the server
        # must refuse to start with exit code 2 and a clear message.
        assert main(["serve", "--models", str(tmp_path)] + flags) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_model_directory_exits_2(self, tmp_path, capsys):
        assert main(["serve", "--models", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_models_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_max_batch_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--models", "m", "--max-batch", "0"])

    def test_predict_engine_choices(self):
        args = build_parser().parse_args(
            ["serve", "--models", "m", "--predict-engine", "tuples"]
        )
        assert args.predict_engine == "tuples"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--models", "m", "--predict-engine", "warp"]
            )
