"""Unit tests for the command-line interface (``python -m repro``)."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_accuracy_defaults(self):
        args = build_parser().parse_args(["accuracy"])
        assert args.dataset == "Iris"
        assert args.error_model == "gaussian"
        assert args.widths == [0.05, 0.10]

    def test_sensitivity_parameter_choices(self):
        args = build_parser().parse_args(["sensitivity", "--parameter", "w"])
        assert args.parameter == "w"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sensitivity", "--parameter", "x"])

    def test_engine_flag_on_every_experiment_command(self):
        for command in ("accuracy", "noise", "efficiency", "sensitivity"):
            args = build_parser().parse_args([command, "--engine", "tuples"])
            assert args.engine == "tuples"
            assert build_parser().parse_args([command]).engine == "columnar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "--engine", "warp-drive"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestCommands:
    def test_example_command(self, capsys):
        assert main(["example"]) == 0
        output = capsys.readouterr().out
        assert "AVG" in output and "UDT" in output
        assert "0.6667" in output and "1.0000" in output

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "JapaneseVowel" in output and "Iris" in output

    def test_accuracy_command_small(self, capsys):
        code = main(
            ["accuracy", "--dataset", "Iris", "--scale", "0.3", "--samples", "6",
             "--folds", "3", "--widths", "0.1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "AVG accuracy" in output and "Iris" in output

    def test_efficiency_command_small(self, capsys):
        code = main(
            ["efficiency", "--dataset", "Iris", "--scale", "0.25", "--samples", "8"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "UDT-ES" in output and "entropy calcs" in output

    def test_sensitivity_command_width_sweep(self, capsys):
        code = main(
            ["sensitivity", "--dataset", "Iris", "--scale", "0.25", "--samples", "8",
             "--parameter", "w"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "w" in output and "entropy calcs" in output

    def test_noise_command_small(self, capsys):
        code = main(
            ["noise", "--dataset", "Iris", "--scale", "0.3", "--samples", "6",
             "--perturbations", "0.0", "--widths", "0.0", "0.1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "UDT accuracy" in output

    def test_accuracy_command_with_tuples_engine(self, capsys):
        code = main(
            ["accuracy", "--dataset", "Iris", "--scale", "0.3", "--samples", "6",
             "--folds", "3", "--widths", "0.1", "--engine", "tuples"]
        )
        assert code == 0
        assert "AVG accuracy" in capsys.readouterr().out


@pytest.fixture
def saved_model(tmp_path):
    """A tiny fitted model archive plus matching CSV rows and expectations."""
    from repro.api import UDTClassifier
    from repro.api.spec import gaussian

    rng = np.random.default_rng(13)
    X = rng.normal(size=(40, 2))
    y = np.where(X[:, 0] + X[:, 1] > 0, "hi", "lo")
    model = UDTClassifier(spec=gaussian(w=0.1, s=6), min_split_weight=4.0).fit(X, y)
    model_path = tmp_path / "model.zip"
    model.save(model_path)
    rows = rng.normal(size=(7, 2))
    return model, model_path, rows


class TestPredictCommand:
    def _write_csv(self, path, rows, header=None):
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            if header:
                writer.writerow(header)
            writer.writerows(rows)

    def test_labels_match_offline_predict(self, saved_model, tmp_path, capsys):
        model, model_path, rows = saved_model
        data = tmp_path / "rows.csv"
        self._write_csv(data, rows)
        assert main(["predict", str(model_path), str(data)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "label"
        assert lines[1:] == list(model.predict(rows))

    def test_header_row_is_skipped(self, saved_model, tmp_path, capsys):
        model, model_path, rows = saved_model
        data = tmp_path / "rows.csv"
        self._write_csv(data, rows, header=["f0", "f1"])
        assert main(["predict", str(model_path), str(data)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[1:] == list(model.predict(rows))

    def test_proba_columns_match_offline(self, saved_model, tmp_path, capsys):
        model, model_path, rows = saved_model
        data = tmp_path / "rows.csv"
        self._write_csv(data, rows)
        assert main(["predict", str(model_path), str(data), "--proba"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "label,p_hi,p_lo"
        parsed = np.array(
            [[float(cell) for cell in line.split(",")[1:]] for line in lines[1:]]
        )
        # repr() round-trips doubles exactly, so the CSV carries every bit.
        assert np.array_equal(parsed, model.predict_proba(rows))

    def test_wrong_column_count_is_an_error(self, saved_model, tmp_path, capsys):
        # A 3-column CSV against a 2-feature model must fail loudly, not be
        # silently regrouped into 2-feature rows.
        _, model_path, _ = saved_model
        data = tmp_path / "rows.csv"
        self._write_csv(data, [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert main(["predict", str(model_path), str(data)]) == 2
        err = capsys.readouterr().err
        assert "expects exactly 2 features" in err

    def test_non_numeric_cell_is_an_error(self, saved_model, tmp_path, capsys):
        _, model_path, _ = saved_model
        data = tmp_path / "rows.csv"
        (data).write_text("1.0,2.0\n3.0,oops\n")
        assert main(["predict", str(model_path), str(data)]) == 2
        assert "non-numeric" in capsys.readouterr().err

    @pytest.mark.parametrize("cell", ["nan", "inf", "-inf"])
    def test_non_finite_cell_is_an_error(self, saved_model, tmp_path, capsys, cell):
        # float() parses "nan"/"inf", so these pass the CSV numeric check —
        # but scoring them would emit garbage probabilities; exit 2 instead.
        _, model_path, _ = saved_model
        data = tmp_path / "rows.csv"
        data.write_text(f"1.0,2.0\n3.0,{cell}\n")
        assert main(["predict", str(model_path), str(data)]) == 2
        err = capsys.readouterr().err
        assert "non-finite" in err
        assert "row 2" in err

    def test_output_file(self, saved_model, tmp_path):
        _, model_path, rows = saved_model
        data = tmp_path / "rows.csv"
        out = tmp_path / "scored.csv"
        self._write_csv(data, rows)
        assert main(
            ["predict", str(model_path), str(data), "--output", str(out)]
        ) == 0
        content = out.read_text().strip().splitlines()
        assert content[0] == "label"
        assert len(content) == 1 + len(rows)


def _future_archive(source_path, target_path, version: int = 99):
    """Copy of an archive with its format_version bumped past this build's."""
    import json
    import zipfile

    with zipfile.ZipFile(source_path) as source:
        members = {name: source.read(name) for name in source.namelist()}
    payload = json.loads(members["model.json"])
    payload["format_version"] = version
    members["model.json"] = json.dumps(payload)
    with zipfile.ZipFile(target_path, "w") as target:
        for name, data in members.items():
            target.writestr(name, data)


class TestTrainForestCommand:
    def _write_training_csv(self, path, n_rows: int = 50, header: bool = True):
        rng = np.random.default_rng(21)
        X = rng.normal(size=(n_rows, 3))
        y = np.where(X[:, 0] - X[:, 2] > 0, "up", "down")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            if header:
                writer.writerow(["a", "b", "c", "label"])
            for row, label in zip(X, y):
                writer.writerow(list(row) + [label])
        return X, y

    def test_parser_defaults(self):
        args = build_parser().parse_args(["train-forest", "d.csv", "m.zip"])
        assert args.kind == "udt"
        assert args.trees == 11
        assert args.width == 0.1
        assert not args.no_bootstrap

    def test_trains_and_saves_a_loadable_forest(self, tmp_path, capsys):
        from repro.api import load_model
        from repro.api.persistence import read_model_metadata

        data = tmp_path / "train.csv"
        X, y = self._write_training_csv(data)
        model_path = tmp_path / "forest.zip"
        assert main(
            ["train-forest", str(data), str(model_path),
             "--trees", "3", "--samples", "6", "--seed", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 trees" in out and "50 rows" in out
        metadata = read_model_metadata(model_path)
        assert metadata["model_kind"] == "forest"
        assert metadata["n_trees"] == 3
        model = load_model(model_path)
        assert model.score(X, y) > 0.6

    def test_same_seed_same_saved_forest(self, tmp_path):
        from repro.api import load_model

        data = tmp_path / "train.csv"
        X, _ = self._write_training_csv(data)
        first, second = tmp_path / "a.zip", tmp_path / "b.zip"
        base = ["train-forest", str(data), "--trees", "3", "--samples", "6"]
        assert main(base[:2] + [str(first)] + base[2:]) == 0
        assert main(base[:2] + [str(second)] + base[2:]) == 0
        assert np.array_equal(
            load_model(first).predict_proba(X), load_model(second).predict_proba(X)
        )

    def test_predict_serves_the_trained_forest(self, tmp_path, capsys):
        from repro.api import load_model

        data = tmp_path / "train.csv"
        X, _ = self._write_training_csv(data)
        model_path = tmp_path / "forest.zip"
        assert main(
            ["train-forest", str(data), str(model_path), "--trees", "3",
             "--samples", "6"]
        ) == 0
        capsys.readouterr()
        rows_path = tmp_path / "rows.csv"
        with open(rows_path, "w", newline="") as handle:
            csv.writer(handle).writerows(X[:5, :].tolist())
        assert main(["predict", str(model_path), str(rows_path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[1:] == list(load_model(model_path).predict(X[:5]))

    def test_empty_csv_is_an_error(self, tmp_path, capsys):
        data = tmp_path / "train.csv"
        data.write_text("")
        assert main(["train-forest", str(data), str(tmp_path / "m.zip")]) == 2
        assert "no training rows" in capsys.readouterr().err

    def test_non_finite_cell_is_an_error(self, tmp_path, capsys):
        data = tmp_path / "train.csv"
        data.write_text("1.0,2.0,x\n3.0,nan,y\n")
        assert main(["train-forest", str(data), str(tmp_path / "m.zip")]) == 2
        assert "non-finite" in capsys.readouterr().err

    def test_feature_subsample_parsing(self):
        from repro.cli import _parse_feature_subsample

        # "1.0" is the documented fraction meaning *all* features — it must
        # not collapse to the integer count 1 (one feature per member).
        assert _parse_feature_subsample("1.0") == 1.0
        assert isinstance(_parse_feature_subsample("1.0"), float)
        assert _parse_feature_subsample("0.5") == 0.5
        assert _parse_feature_subsample("3") == 3
        assert isinstance(_parse_feature_subsample("3"), int)
        assert _parse_feature_subsample("sqrt") == "sqrt"
        assert _parse_feature_subsample(None) is None

    def test_bad_feature_subsample_is_an_error(self, tmp_path, capsys):
        data = tmp_path / "train.csv"
        self._write_training_csv(data)
        assert main(
            ["train-forest", str(data), str(tmp_path / "m.zip"),
             "--feature-subsample", "-2"]
        ) == 2
        assert "feature_subsample" in capsys.readouterr().err


class TestFormatVersionGate:
    def test_predict_exits_2_naming_both_versions(self, saved_model, tmp_path, capsys):
        from repro.api import FORMAT_VERSION

        _, model_path, rows = saved_model
        future = tmp_path / "future.zip"
        _future_archive(model_path, future, version=99)
        data = tmp_path / "rows.csv"
        with open(data, "w", newline="") as handle:
            csv.writer(handle).writerows(rows.tolist())
        assert main(["predict", str(future), str(data)]) == 2
        err = capsys.readouterr().err
        assert "format version 99" in err
        assert f"version {FORMAT_VERSION}" in err
        assert "upgrade" in err

    def test_serve_exits_2_naming_the_archive(self, saved_model, tmp_path, capsys):
        _, model_path, _ = saved_model
        models = tmp_path / "models"
        models.mkdir()
        _future_archive(model_path, models / "future.zip", version=99)
        assert main(["serve", "--models", str(models), "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert "future.zip" in err
        assert "format version 99" in err

    def test_corrupt_archive_still_exits_2_for_predict(self, tmp_path, capsys):
        bad = tmp_path / "bad.zip"
        bad.write_text("not a zip")
        data = tmp_path / "rows.csv"
        data.write_text("1.0\n")
        assert main(["predict", str(bad), str(data)]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "--models", "models/"])
        assert args.models == "models/"
        assert args.port == 8000
        assert args.max_batch == 64
        assert args.max_wait_ms == 2.0
        assert args.max_queue_rows is None
        assert args.request_timeout == 30.0
        assert args.workers == 1
        assert args.cache_decimals is None
        assert args.predict_engine == "columnar"
        assert args.preload is False

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--models", "m", "--workers", "0"])
        args = build_parser().parse_args(["serve", "--models", "m", "--workers", "4"])
        assert args.workers == 4

    def test_overload_knobs_parse(self):
        args = build_parser().parse_args(
            ["serve", "--models", "m", "--max-queue-rows", "256",
             "--max-queue-rows-per-model", "64", "--request-timeout", "2.5"]
        )
        assert args.max_queue_rows == 256
        assert args.max_queue_rows_per_model == 64
        assert args.request_timeout == 2.5
        assert build_parser().parse_args(
            ["serve", "--models", "m"]
        ).max_queue_rows_per_model is None

    @pytest.mark.parametrize(
        "flags",
        [
            ["--request-timeout", "0"],
            ["--request-timeout", "-3"],
            ["--cache-decimals", "-1"],
            ["--max-queue-rows", "0"],
            ["--max-queue-rows-per-model", "0"],
            ["--cache-size", "-1"],
            ["--max-wait-ms", "-1"],
        ],
    )
    def test_bad_knob_values_exit_2_instead_of_starting(self, tmp_path, capsys, flags):
        # The values parse (argparse cannot know the semantics); the server
        # must refuse to start with exit code 2 and a clear message.
        assert main(["serve", "--models", str(tmp_path)] + flags) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_model_directory_exits_2(self, tmp_path, capsys):
        assert main(["serve", "--models", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_models_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_max_batch_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--models", "m", "--max-batch", "0"])

    def test_predict_engine_choices(self):
        args = build_parser().parse_args(
            ["serve", "--models", "m", "--predict-engine", "tuples"]
        )
        assert args.predict_engine == "tuples"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--models", "m", "--predict-engine", "warp"]
            )


class TestRouterCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["router", "--replica", "http://127.0.0.1:8001"]
        )
        assert args.replica == ["http://127.0.0.1:8001"]
        assert args.port == 8080
        assert args.health_interval == 2.0
        assert args.up_after == 2
        assert args.down_after == 2
        assert args.fanout_trees == 32
        assert args.fanout_shards == 0
        assert args.sync_source is None
        assert args.sync_dest is None
        assert args.sync_interval == 10.0

    def test_replica_is_required_and_repeatable(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["router"])
        args = build_parser().parse_args(
            ["router", "--replica", "http://a:1", "--replica", "http://b:2"]
        )
        assert args.replica == ["http://a:1", "http://b:2"]

    def test_sync_dest_without_source_exits_2(self, tmp_path, capsys):
        assert main([
            "router", "--replica", "http://127.0.0.1:1",
            "--sync-dest", str(tmp_path),
        ]) == 2
        assert "--sync-source" in capsys.readouterr().err

    def test_missing_sync_source_exits_2(self, tmp_path, capsys):
        assert main([
            "router", "--replica", "http://127.0.0.1:1",
            "--sync-source", str(tmp_path / "nope"),
            "--sync-dest", str(tmp_path / "dest"),
        ]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_bad_fanout_trees_exits_2(self, capsys):
        assert main([
            "router", "--replica", "http://127.0.0.1:1", "--fanout-trees", "1",
        ]) == 2
        assert "fanout_trees" in capsys.readouterr().err

    def test_duplicate_replicas_exit_2(self, capsys):
        assert main([
            "router", "--replica", "http://127.0.0.1:1",
            "--replica", "http://127.0.0.1:1/",
        ]) == 2
        assert "unique" in capsys.readouterr().err
