"""Dataset substrates: synthetic generators, UCI stand-ins and uncertainty models.

This subpackage provides everything the experiments need on the data side:

* :mod:`repro.data.synthetic` — seeded class-conditional Gaussian-mixture
  generators for point data of arbitrary shape;
* :mod:`repro.data.uci` — stand-ins for the ten UCI datasets of Table 2
  (same tuples × attributes × classes shape, scaled on demand);
* :mod:`repro.data.uncertainty` — the paper's error models: pdf injection
  with width ``w`` and ``s`` samples (Gaussian or uniform) and the
  controlled perturbation ``u`` of Section 4.4;
* :mod:`repro.data.example` — the handcrafted Table 1 example;
* :mod:`repro.data.loaders` — CSV import/export for users with real data.
"""

from repro.data.example import TABLE1_LABELS, TABLE1_MEANS, table1_dataset
from repro.data.loaders import load_csv, save_csv, train_test_rows
from repro.data.synthetic import ClassificationSpec, make_classification_points, make_point_dataset
from repro.data.uci import (
    TABLE2_DATASETS,
    UCIDatasetSpec,
    dataset_names,
    get_spec,
    load_dataset,
    load_japanese_vowel,
)
from repro.data.uncertainty import (
    ERROR_MODELS,
    attribute_ranges,
    inject_uncertainty,
    model_width_for_perturbation,
    perturb_points,
    repeated_measurement_pdfs,
)

__all__ = [
    "ClassificationSpec",
    "ERROR_MODELS",
    "TABLE1_LABELS",
    "TABLE1_MEANS",
    "TABLE2_DATASETS",
    "UCIDatasetSpec",
    "attribute_ranges",
    "dataset_names",
    "get_spec",
    "inject_uncertainty",
    "load_csv",
    "load_dataset",
    "load_japanese_vowel",
    "make_classification_points",
    "make_point_dataset",
    "model_width_for_perturbation",
    "perturb_points",
    "repeated_measurement_pdfs",
    "save_csv",
    "table1_dataset",
    "train_test_rows",
]
