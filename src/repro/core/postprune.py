"""C4.5-style pessimistic post-pruning.

The paper applies the standard pre- and post-pruning techniques of C4.5 to
alleviate overfitting (footnote 3).  This module implements *pessimistic
error pruning*: a subtree is replaced by a leaf whenever the pessimistic
estimate of the leaf's error on the training tuples is no worse than the sum
of the pessimistic errors of the subtree's leaves.  The pessimistic estimate
is the upper confidence limit of the binomial error rate (normal
approximation), evaluated at the C4.5 default confidence factor of 0.25.

Fractional tuples require no special treatment: the error counts are simply
the fractional weights of the misclassified mass.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.tree import InternalNode, LeafNode, TreeNode

__all__ = ["pessimistic_prune", "pessimistic_error", "normal_quantile"]


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF via Acklam's rational approximation.

    Accurate to about 1e-9 over (0, 1); sufficient for confidence-limit
    computations and avoids a SciPy dependency in the core library.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p!r}")
    # Coefficients of Acklam's approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    p_high = 1.0 - p_low
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > p_high:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    )


try:  # SciPy gives the exact (Clopper-Pearson) binomial upper limit that C4.5 uses.
    from scipy.stats import beta as _beta_distribution
except ImportError:  # pragma: no cover - exercised only in SciPy-free installs
    _beta_distribution = None


def pessimistic_error(errors: float, total: float, confidence: float = 0.25) -> float:
    """Pessimistic (upper-confidence) number of errors among ``total`` tuples.

    Implements the C4.5 estimate: the upper limit of the one-sided
    ``1 - confidence`` interval of the binomial error rate, multiplied back
    by ``total``.  ``errors`` and ``total`` may be fractional weights.  The
    exact binomial (Clopper-Pearson) limit is used when SciPy is available;
    otherwise the standard normal approximation is used, which is slightly
    less pessimistic for very small leaves.
    """
    if total <= 0.0:
        return 0.0
    errors = min(max(errors, 0.0), total)
    if _beta_distribution is not None:
        if errors >= total:
            return total
        rate = float(_beta_distribution.ppf(1.0 - confidence, errors + 1.0, total - errors))
        return min(max(rate, 0.0), 1.0) * total
    z = normal_quantile(1.0 - confidence)
    f = errors / total
    z2 = z * z
    numerator = f + z2 / (2.0 * total) + z * math.sqrt(
        max(f / total - f * f / total + z2 / (4.0 * total * total), 0.0)
    )
    rate = numerator / (1.0 + z2 / total)
    return min(rate, 1.0) * total


def _class_counts(node: TreeNode) -> np.ndarray | None:
    """Weighted training class counts stored at a node, if available."""
    if isinstance(node, LeafNode):
        return node.distribution * node.training_weight
    assert isinstance(node, InternalNode)
    if node.training_distribution is None:
        return None
    return np.asarray(node.training_distribution) * node.training_weight


def _subtree_pessimistic_error(node: TreeNode, confidence: float) -> float:
    """Sum of pessimistic errors over the leaves of a subtree."""
    if isinstance(node, LeafNode):
        counts = node.distribution * node.training_weight
        errors = float(counts.sum() - counts.max()) if counts.size else 0.0
        return pessimistic_error(errors, float(counts.sum()), confidence)
    assert isinstance(node, InternalNode)
    return sum(_subtree_pessimistic_error(child, confidence) for child in node.children())


def _pessimistic_error_batch(
    errors: np.ndarray, totals: np.ndarray, confidence: float
) -> np.ndarray:
    """Vectorised :func:`pessimistic_error` over aligned arrays."""
    errors = np.minimum(np.maximum(errors, 0.0), totals)
    result = np.zeros(errors.size)
    live = totals > 0.0
    if not np.any(live):
        return result
    if _beta_distribution is not None:
        saturated = live & (errors >= totals)
        result[saturated] = totals[saturated]
        open_rows = live & ~saturated
        if np.any(open_rows):
            rates = _beta_distribution.ppf(
                1.0 - confidence, errors[open_rows] + 1.0,
                totals[open_rows] - errors[open_rows],
            )
            result[open_rows] = np.clip(rates, 0.0, 1.0) * totals[open_rows]
        return result
    for index in np.flatnonzero(live):
        result[index] = pessimistic_error(
            float(errors[index]), float(totals[index]), confidence
        )
    return result


def pessimistic_prune(
    root: TreeNode, confidence: float = 0.25
) -> tuple[TreeNode, int]:
    """Prune a tree bottom-up, returning the new root and the collapse count.

    A subtree is collapsed into a leaf whenever the pessimistic error of the
    collapsed leaf does not exceed the summed pessimistic errors of the
    subtree's leaves.  Every node's own-leaf error depends only on its
    training class counts, which are known before any pruning decision — so
    all confidence limits are computed in one vectorised batch up front,
    and the bottom-up pass just sums and compares them.
    """
    # Pass 1: collect the (errors, total) pair of every node.
    nodes: list[TreeNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        if isinstance(node, InternalNode):
            stack.extend(node.children())
    error_list = np.zeros(len(nodes))
    total_list = np.zeros(len(nodes))
    for index, node in enumerate(nodes):
        counts = _class_counts(node)
        if counts is None or counts.size == 0:
            continue
        total_list[index] = counts.sum()
        error_list[index] = counts.sum() - counts.max()
    batch = _pessimistic_error_batch(error_list, total_list, confidence)
    own_error = {id(node): float(batch[index]) for index, node in enumerate(nodes)}

    collapsed = 0

    def prune(node: TreeNode) -> tuple[TreeNode, float]:
        """Prune a subtree; returns the new node and its summed leaf error."""
        nonlocal collapsed
        if isinstance(node, LeafNode):
            return node, own_error[id(node)]
        assert isinstance(node, InternalNode)
        subtree_errors = 0.0
        if node.is_numerical_test:
            assert node.left is not None and node.right is not None
            node.left, left_errors = prune(node.left)
            node.right, right_errors = prune(node.right)
            subtree_errors = left_errors + right_errors
        else:
            branches: dict = {}
            for value, child in node.branches.items():
                branches[value], child_errors = prune(child)
                subtree_errors += child_errors
            node.branches = branches

        counts = _class_counts(node)
        if counts is None or counts.sum() <= 0:
            return node, subtree_errors
        total = float(counts.sum())
        leaf_errors = own_error[id(node)]
        if leaf_errors <= subtree_errors + 1e-9:
            collapsed += 1
            leaf = LeafNode(counts / total, training_weight=total)
            return leaf, leaf_errors
        return node, subtree_errors

    new_root, _ = prune(root)
    return new_root, collapsed
