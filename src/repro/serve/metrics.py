"""Typed serving metrics: Counter/Gauge/Histogram families with labels.

One :class:`ServingMetrics` instance is shared by the HTTP layer (request
counts, per-request latency, error counts), the inference engine (batch
sizes, cache hits, admission-control rejections, abandoned requests, and
live queue-depth gauges registered via :meth:`register_gauge`) and the
worker pool (shard fan-out counters).

Every number lives in a typed metric family — :class:`Counter`,
:class:`Gauge` or :class:`Histogram`, addressed through ``.labels(...)``
children exactly like the Prometheus client libraries — collected in one
:class:`MetricRegistry`.  The registry renders two views of the same state:

* :meth:`ServingMetrics.snapshot` — the legacy JSON dict behind
  ``GET /metrics``.  Its key layout (and therefore its serialised bytes)
  is kept bit-compatible with the pre-registry implementation, so
  existing dashboards, tests and the benchmark drivers keep working
  unchanged;
* :meth:`ServingMetrics.render_prometheus` — Prometheus text exposition
  (format 0.0.4: ``# HELP`` / ``# TYPE`` lines, escaped label values,
  cumulative histogram buckets ending in ``le="+Inf"``), served by
  ``GET /metrics`` under ``Accept: text/plain`` content negotiation.
  Labelled families that have no legacy JSON slot (per-model latency
  histograms, worker-pool utilisation) appear only here.

Latency quantiles for the JSON view are computed over a bounded ring of
the most recent observations (default 2048), so the memory footprint is
constant no matter how long the server runs; the Prometheus view exposes
the full cumulative latency histogram instead.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict, deque

import numpy as np

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "ServingMetrics",
    "batch_bucket",
]

#: Upper bounds of the batch-size histogram buckets; sizes above the last
#: bound fall into the overflow bucket labelled ``"inf"``.
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Upper bounds (seconds) of the request-latency histogram buckets.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: The Content-Type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def batch_bucket(size: int) -> str:
    """Histogram bucket label for a coalesced batch of ``size`` rows."""
    for bound in BATCH_BUCKETS:
        if size <= bound:
            return str(bound)
    return "inf"


def _escape_help(text: str) -> str:
    """Escape a HELP line: backslash and newline per the exposition format."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double quote and newline."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_number(value) -> str:
    """A sample value in exposition syntax (integers without a fraction)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_le(bound: float) -> str:
    """The ``le`` label of a histogram bucket bound."""
    if bound == float("inf"):
        return "+Inf"
    return _format_number(bound)


def _sample_line(name: str, labels: "OrderedDict | dict", value) -> str:
    if labels:
        body = ",".join(
            f'{key}="{_escape_label_value(str(item))}"' for key, item in labels.items()
        )
        return f"{name}{{{body}}} {_format_number(value)}"
    return f"{name} {_format_number(value)}"


class MetricFamily:
    """Shared base of the three family kinds: name, help text, label schema.

    Children (one per distinct label-value tuple) are created on first
    ``labels(...)`` access and kept in insertion order — the order the
    JSON shim and the exposition renderer both report them in.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames=(), *, lock=None) -> None:  # noqa: A002
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} for metric {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock if lock is not None else threading.Lock()
        self._children: "OrderedDict[tuple, object]" = OrderedDict()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, *values, **by_name):
        """The child for one label-value combination (created on first use)."""
        if by_name:
            if values:
                raise ValueError("pass label values either positionally or by name")
            try:
                values = tuple(str(by_name.pop(label)) for label in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc.args[0]!r} for {self.name!r}") from exc
            if by_name:
                raise ValueError(
                    f"unknown labels {sorted(by_name)} for {self.name!r}"
                )
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name!r} takes {len(self.labelnames)} label values, got {len(values)}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._new_child()
                self._children[values] = child
            return child

    def _label_dict(self, values: tuple) -> "OrderedDict":
        return OrderedDict(zip(self.labelnames, values))

    def children(self) -> "list[tuple[tuple, object]]":
        """``(label_values, child)`` pairs in first-use order."""
        with self._lock:
            return list(self._children.items())

    def render(self) -> "list[str]":
        """Exposition lines of the whole family (HELP, TYPE, samples)."""
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines.extend(self._sample_lines())
        return lines

    def _sample_lines(self) -> "list[str]":
        raise NotImplementedError


class _CounterValue:
    """One monotonically increasing value."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock) -> None:
        self._value = 0
        self._lock = lock

    def inc(self, amount=1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters can only increase, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value


class Counter(MetricFamily):
    """A monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames=(), *, lock=None) -> None:  # noqa: A002
        super().__init__(name, help, labelnames, lock=lock)
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> _CounterValue:
        return _CounterValue(self._lock)

    def inc(self, amount=1) -> None:
        """Increment the label-less counter (families with labels refuse)."""
        if self.labelnames:
            raise ValueError(f"{self.name!r} has labels; use .labels(...).inc()")
        self._children[()].inc(amount)

    def total(self):
        """Sum over every child (the legacy JSON scalar for this family)."""
        with self._lock:
            return sum(child.value for child in self._children.values())

    def as_dict(self) -> dict:
        """``{joined label values: count}`` in first-use order (JSON shim)."""
        with self._lock:
            return {
                ",".join(values): child.value
                for values, child in self._children.items()
            }

    def _sample_lines(self) -> "list[str]":
        return [
            _sample_line(self.name, self._label_dict(values), child.value)
            for values, child in self.children()
        ]


class _GaugeValue:
    """One settable value, or a zero-argument callable read at render time."""

    __slots__ = ("_value", "_callback", "_lock")

    def __init__(self, lock) -> None:
        self._value = 0.0
        self._callback = None
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self._value = value
            self._callback = None

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, callback) -> None:
        """Read the gauge through ``callback()`` at every collection."""
        with self._lock:
            self._callback = callback

    @property
    def value(self):
        # Callbacks run outside the lock: they read live engine state and
        # must never be able to deadlock against a recording call.
        callback = self._callback
        if callback is not None:
            return callback()
        return self._value


class Gauge(MetricFamily):
    """A value that can go up and down (or is read live via a callback)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames=(), *, lock=None) -> None:  # noqa: A002
        super().__init__(name, help, labelnames, lock=lock)
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> _GaugeValue:
        return _GaugeValue(self._lock)

    def _solo(self) -> _GaugeValue:
        if self.labelnames:
            raise ValueError(f"{self.name!r} has labels; use .labels(...)")
        return self._children[()]

    def set(self, value) -> None:
        self._solo().set(value)

    def inc(self, amount=1) -> None:
        self._solo().inc(amount)

    def dec(self, amount=1) -> None:
        self._solo().dec(amount)

    def set_function(self, callback) -> None:
        self._solo().set_function(callback)

    def _sample_lines(self) -> "list[str]":
        return [
            _sample_line(self.name, self._label_dict(values), child.value)
            for values, child in self.children()
        ]


class _HistogramValue:
    """Per-child bucket counts (non-cumulative), sum and count."""

    __slots__ = ("counts", "sum", "count", "_lock")

    def __init__(self, n_buckets: int, lock) -> None:
        self.counts = [0] * (n_buckets + 1)  # one overflow (+Inf) slot
        self.sum = 0.0
        self.count = 0
        self._lock = lock


class Histogram(MetricFamily):
    """A distribution over fixed buckets, rendered cumulatively for Prometheus.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in the implicit ``+Inf`` overflow bucket.  Besides the
    per-child state, the family keeps one merged, first-observation-ordered
    bucket-count dict (:meth:`json_counts`) — the exact structure the
    legacy JSON ``batch_size_histogram`` reported, preserved across any
    label split so the JSON shim stays bit-compatible.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str, labelnames=(), *, buckets, lock=None  # noqa: A002
    ) -> None:
        super().__init__(name, help, labelnames, lock=lock)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(upper <= lower for upper, lower in zip(bounds[1:], bounds)):
            raise ValueError(f"histogram buckets must be ascending, got {buckets!r}")
        self.buckets = bounds
        self._json_counts: "OrderedDict[str, int]" = OrderedDict()
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> _HistogramValue:
        return _HistogramValue(len(self.buckets), self._lock)

    def _bucket_index(self, value: float) -> int:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                return index
        return len(self.buckets)

    def _json_label(self, index: int) -> str:
        if index == len(self.buckets):
            return "inf"
        return _format_number(self.buckets[index])

    def observe(self, value, child: "_HistogramValue | None" = None) -> None:
        """Record one observation (into ``child`` for labelled families)."""
        if child is None:
            if self.labelnames:
                raise ValueError(f"{self.name!r} has labels; use .observe_labels(...)")
            child = self._children[()]
        value = float(value)
        index = self._bucket_index(value)
        label = self._json_label(index)
        with self._lock:
            child.counts[index] += 1
            child.sum += value
            child.count += 1
            self._json_counts[label] = self._json_counts.get(label, 0) + 1

    def observe_labels(self, value, *label_values, **by_name) -> None:
        """``labels(...).observe`` in one call (labelled families)."""
        self.observe(value, self.labels(*label_values, **by_name))

    def total_count(self) -> int:
        """Observations across every child (the legacy ``batch_count``)."""
        with self._lock:
            return sum(child.count for child in self._children.values())

    def json_counts(self) -> "OrderedDict[str, int]":
        """Merged non-cumulative bucket counts in first-observation order."""
        with self._lock:
            return OrderedDict(self._json_counts)

    def _sample_lines(self) -> "list[str]":
        lines = []
        for values, child in self.children():
            with self._lock:
                counts = list(child.counts)
                total = child.count
                observed_sum = child.sum
            cumulative = 0
            for index, bound in enumerate(self.buckets):
                cumulative += counts[index]
                labels = self._label_dict(values)
                labels["le"] = _format_le(bound)
                lines.append(_sample_line(f"{self.name}_bucket", labels, cumulative))
            labels = self._label_dict(values)
            labels["le"] = "+Inf"
            lines.append(_sample_line(f"{self.name}_bucket", labels, total))
            lines.append(
                _sample_line(f"{self.name}_sum", self._label_dict(values), observed_sum)
            )
            lines.append(
                _sample_line(f"{self.name}_count", self._label_dict(values), total)
            )
        return lines


class MetricRegistry:
    """An ordered collection of metric families sharing one lock.

    Families register through the :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` factories; :meth:`render_prometheus` walks them in
    registration order and emits the text exposition format.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "OrderedDict[str, MetricFamily]" = OrderedDict()

    def _register(self, family: MetricFamily) -> MetricFamily:
        if family.name in self._families:
            raise ValueError(f"metric {family.name!r} is already registered")
        self._families[family.name] = family
        return family

    def counter(self, name: str, help: str, labelnames=()) -> Counter:  # noqa: A002
        return self._register(Counter(name, help, labelnames, lock=self._lock))

    def gauge(self, name: str, help: str, labelnames=()) -> Gauge:  # noqa: A002
        return self._register(Gauge(name, help, labelnames, lock=self._lock))

    def histogram(
        self, name: str, help: str, labelnames=(), *, buckets  # noqa: A002
    ) -> Histogram:
        return self._register(
            Histogram(name, help, labelnames, buckets=buckets, lock=self._lock)
        )

    def families(self) -> "list[MetricFamily]":
        return list(self._families.values())

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format 0.0.4."""
        lines: "list[str]" = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


class ServingMetrics:
    """Counters and distributions describing one serving process.

    The recording API (``record_request`` / ``record_predict`` / ...) is the
    stable surface the HTTP layer, engine and pool call into; underneath,
    every value is a typed family in :attr:`registry`.  ``snapshot()``
    renders the legacy JSON layout bit-compatibly; ``render_prometheus()``
    renders the full registry as text exposition.
    """

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._latencies: deque = deque(maxlen=latency_window)
        self.registry = MetricRegistry()
        registry = self.registry
        self._http_requests = registry.counter(
            "repro_http_requests_total", "HTTP requests received (any endpoint)."
        )
        self._predict_requests = registry.counter(
            "repro_predict_requests_total",
            "Successful prediction requests, by model.",
            ("model",),
        )
        self._predict_rows = registry.counter(
            "repro_predict_rows_total", "Feature rows served, by model.", ("model",)
        )
        self._latency = registry.histogram(
            "repro_request_latency_seconds",
            "Prediction request latency (seconds), by model.",
            ("model",),
            buckets=LATENCY_BUCKETS,
        )
        self._batch_rows = registry.histogram(
            "repro_batch_size_rows",
            "Rows per coalesced model invocation, by model.",
            ("model",),
            buckets=BATCH_BUCKETS,
        )
        self._cache_hits = registry.counter(
            "repro_cache_hits_total", "Prediction-cache hits."
        )
        self._cache_misses = registry.counter(
            "repro_cache_misses_total", "Prediction-cache misses."
        )
        self._errors = registry.counter(
            "repro_http_errors_total", "HTTP error responses, by status code.", ("status",)
        )
        self._rejected_requests = registry.counter(
            "repro_requests_rejected_total",
            "Requests shed by admission control (HTTP 429).",
        )
        self._rejected_rows = registry.counter(
            "repro_rows_rejected_total", "Rows shed by admission control."
        )
        self._rejected_by_model = registry.counter(
            "repro_requests_rejected_by_model_total",
            "Requests shed by admission control, by model.",
            ("model",),
        )
        self._abandoned_requests = registry.counter(
            "repro_requests_abandoned_total",
            "Timed-out requests cancelled before classification.",
        )
        self._abandoned_rows = registry.counter(
            "repro_rows_abandoned_total", "Rows of cancelled requests never classified."
        )
        self._pool_workers = registry.gauge(
            "repro_pool_workers", "Worker-pool processes attached to the engine."
        )
        self._pool_batches = registry.counter(
            "repro_pool_batches_total", "Coalesced batches dispatched to the worker pool."
        )
        self._pool_shards = registry.counter(
            "repro_pool_shards_total", "Shards fanned out across worker processes."
        )
        self._pool_fallbacks = registry.counter(
            "repro_pool_fallbacks_total",
            "Batches served in-process because the pool refused or failed.",
        )
        self._stage_latency = registry.histogram(
            "repro_stage_latency_seconds",
            "Per-stage serving latency (seconds): queue_wait, batch_wait, "
            "inference — the same stages the trace spans carry.",
            ("stage", "model"),
            buckets=LATENCY_BUCKETS,
        )
        self._model_generation = registry.gauge(
            "repro_model_update_generation",
            "Streaming update generation of the served model snapshot "
            "(incremental partial_fit/refresh updates since its full fit).",
            ("model",),
        )
        self._gauges: dict = {}

    # -- recording -----------------------------------------------------------

    def record_request(self) -> None:
        """Count one HTTP request (any endpoint)."""
        self._http_requests.inc()

    def record_predict(
        self, n_rows: int, latency_seconds: float, model: "str | None" = None
    ) -> None:
        """Count one prediction call of ``n_rows`` rows and its latency.

        ``model`` labels the per-model counters and latency histogram; the
        legacy JSON view reports the totals across models, exactly as the
        unlabelled implementation did.
        """
        label = model if model is not None else ""
        self._predict_requests.labels(label).inc()
        self._predict_rows.labels(label).inc(int(n_rows))
        self._latency.observe_labels(float(latency_seconds), label)
        with self._lock:
            self._latencies.append(float(latency_seconds))

    def record_batch(self, size: int, model: "str | None" = None) -> None:
        """Count one coalesced model invocation of ``size`` rows."""
        self._batch_rows.observe_labels(int(size), model if model is not None else "")

    def record_stage(
        self, stage: str, model: "str | None", seconds: float
    ) -> None:
        """Record one per-stage latency observation (Prometheus-only family).

        Stages mirror the replica-side trace spans — ``queue_wait`` (enqueue
        to batch claim), ``batch_wait`` (coalescer linger + assembly) and
        ``inference`` (the model invocation) — so a histogram regression and
        a slow trace point at the same place.  No legacy JSON slot: the
        ``snapshot()`` byte-compatibility contract stays untouched.
        """
        self._stage_latency.observe_labels(
            float(seconds), stage, model if model is not None else ""
        )

    def set_model_generation(self, model: str, generation) -> None:
        """Expose the update generation of the snapshot a model serves from.

        Set on every prediction right after the registry lookup, so the
        continuous trainer's hot-reloaded publications become visible in
        ``/metrics`` as soon as traffic touches the new snapshot.  Like
        :meth:`record_stage` this is a Prometheus-only family — the
        ``snapshot()`` byte-compatibility contract stays untouched.
        """
        self._model_generation.labels(model).set(int(generation))

    def record_cache(self, hits: int = 0, misses: int = 0) -> None:
        """Count prediction-cache lookups."""
        if hits:
            self._cache_hits.inc(int(hits))
        if misses:
            self._cache_misses.inc(int(misses))

    def record_error(self, status: int) -> None:
        """Count one HTTP error response by status code."""
        self._errors.labels(str(int(status))).inc()

    def record_rejected(self, n_rows: int, model: "str | None" = None) -> None:
        """Count one request shed by admission control (queue full, 429).

        ``model`` attributes the rejection to the model whose request was
        shed — whether it hit the shared bound or its own per-model quota —
        so ``/metrics`` shows which model is drawing the overload.
        """
        self._rejected_requests.inc()
        self._rejected_rows.inc(int(n_rows))
        if model is not None:
            self._rejected_by_model.labels(model).inc()

    def record_abandoned(self, n_rows: int) -> None:
        """Count one cancelled request dropped before classification.

        Abandoned rows are the serving-side analogue of the paper's pruned
        entropy calculations: work that provably cannot change any answer a
        caller will see, identified and skipped instead of computed.
        """
        self._abandoned_requests.inc()
        self._abandoned_rows.inc(int(n_rows))

    def record_pool(self, n_shards: int) -> None:
        """Count one batch fanned out across ``n_shards`` worker shards."""
        self._pool_batches.inc()
        self._pool_shards.inc(int(n_shards))

    def record_pool_fallback(self) -> None:
        """Count one batch the pool refused (hot-reload race or breakage)."""
        self._pool_fallbacks.inc()

    def set_pool_workers(self, n_workers: int) -> None:
        """Expose the attached worker-pool size (0 = in-process engine)."""
        self._pool_workers.set(int(n_workers))

    def register_gauge(self, name: str, read) -> None:
        """Expose a live value in ``snapshot()``'s ``queue`` section.

        ``read`` is a zero-argument callable returning a number — or a
        ``{label: number}`` dict for per-model gauges — and the engine
        registers its queue-depth and capacity here so ``/metrics`` reports
        the instantaneous backlog, not just cumulative counters.  In the
        Prometheus rendering each entry appears as ``repro_queue_<name>``
        (dict-valued gauges become one sample per ``model`` label).
        """
        with self._lock:
            self._gauges[name] = read

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able view of every metric, bit-compatible with the legacy
        ad-hoc dict (the default ``GET /metrics`` payload)."""
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=float)
            gauges = dict(self._gauges)
        cache_hits = self._cache_hits.total()
        cache_misses = self._cache_misses.total()
        cache_lookups = cache_hits + cache_misses
        snapshot = {
            "request_count": self._http_requests.total(),
            "predict_requests": self._predict_requests.total(),
            "rows_total": self._predict_rows.total(),
            "batch_count": self._batch_rows.total_count(),
            "batch_size_histogram": dict(self._batch_rows.json_counts()),
            "cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (cache_hits / cache_lookups) if cache_lookups else 0.0,
            },
            "errors": self._errors.as_dict(),
            "requests_rejected": self._rejected_requests.total(),
            "rows_rejected": self._rejected_rows.total(),
            "requests_rejected_by_model": self._rejected_by_model.as_dict(),
            "requests_abandoned": self._abandoned_requests.total(),
            "rows_abandoned": self._abandoned_rows.total(),
        }
        if latencies.size:
            snapshot["latency_ms"] = {
                "count": int(latencies.size),
                "mean": float(latencies.mean() * 1e3),
                "p50": float(np.percentile(latencies, 50) * 1e3),
                "p90": float(np.percentile(latencies, 90) * 1e3),
                "p99": float(np.percentile(latencies, 99) * 1e3),
            }
        else:
            snapshot["latency_ms"] = {
                "count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
            }
        # Gauges are evaluated outside the metrics lock: they read engine
        # state and must never be able to deadlock against a recording call.
        snapshot["queue"] = {name: read() for name, read in gauges.items()}
        return snapshot

    def render_prometheus(self) -> str:
        """Every family — plus the live queue gauges — as text exposition."""
        text = self.registry.render_prometheus()
        with self._lock:
            gauges = dict(self._gauges)
        lines: "list[str]" = []
        for name, read in gauges.items():
            metric = f"repro_queue_{name}"
            lines.append(f"# HELP {metric} Live queue gauge {_escape_help(name)}.")
            lines.append(f"# TYPE {metric} gauge")
            value = read()
            if isinstance(value, dict):
                for label, entry in value.items():
                    lines.append(
                        _sample_line(metric, OrderedDict(model=str(label)), entry)
                    )
            else:
                lines.append(_sample_line(metric, {}, value))
        if lines:
            text += "\n".join(lines) + "\n"
        return text
