"""E2 — Table 3: classification accuracy of AVG vs UDT on the ten datasets.

For every Table 2 dataset stand-in the driver evaluates the Averaging and
Distribution-based classifiers under the paper's error models and collects
one Table 3 style row per configuration.  The benchmark fixture times a
single representative UDT training run per dataset; the full accuracy sweep
runs once and its rows are written to ``benchmarks/results/table3_accuracy.txt``.

Expected shape (not absolute numbers): UDT accuracy >= AVG accuracy for most
datasets and widths, with the best case clearly positive; integer-domain
datasets favour the uniform error model.
"""

from __future__ import annotations

import pytest

from repro.core import UDTClassifier
from repro.data import inject_uncertainty, load_dataset
from repro.eval import AccuracyExperiment, format_accuracy_results

from helpers import BENCH_ENGINE, BENCH_SAMPLES, BENCH_SCALE, save_artifact, save_json_artifact

#: Datasets evaluated by cross validation get fewer folds at bench scale.
_BENCH_FOLDS = 3

#: Width sweep — a subset of the paper's {1 %, 5 %, 10 %, 20 %}.
_WIDTHS = (0.05, 0.10)

#: (dataset, error models) pairs following Table 3: uniform is tried for the
#: integer-domain datasets, Gaussian everywhere.
_CONFIGS = [
    ("JapaneseVowel", ("gaussian",)),
    ("PenDigits", ("gaussian", "uniform")),
    ("PageBlock", ("gaussian",)),
    ("Satellite", ("gaussian", "uniform")),
    ("Segment", ("gaussian",)),
    ("Vehicle", ("gaussian", "uniform")),
    ("BreastCancer", ("gaussian",)),
    ("Ionosphere", ("gaussian",)),
    ("Glass", ("gaussian",)),
    ("Iris", ("gaussian",)),
]

#: Extra scale reduction for the large train/test datasets so the accuracy
#: sweep stays in bench territory.
_EXTRA_SCALE = {"PenDigits": 0.06, "Satellite": 0.08, "PageBlock": 0.1, "Segment": 0.3}

_collected_rows = []


def _dataset_scale(name: str) -> float:
    return BENCH_SCALE * _EXTRA_SCALE.get(name, 1.0)


@pytest.mark.parametrize("name,error_models", _CONFIGS, ids=[c[0] for c in _CONFIGS])
def bench_table3_dataset(benchmark, name, error_models):
    """Accuracy sweep for one dataset; the benchmark times one UDT fit."""
    scale = _dataset_scale(name)
    experiment = AccuracyExperiment(
        name, scale=scale, n_samples=BENCH_SAMPLES, n_folds=_BENCH_FOLDS, seed=17,
        engine=BENCH_ENGINE,
    )
    results = experiment.run(width_fractions=_WIDTHS, error_models=error_models)
    _collected_rows.extend(results)

    # Benchmark one representative UDT training run on this dataset.
    training, _, spec = load_dataset(name, scale=scale, seed=17)
    if not spec.repeated_measurements:
        training = inject_uncertainty(
            training, width_fraction=0.10, n_samples=BENCH_SAMPLES, error_model=error_models[0]
        )
    benchmark(lambda: UDTClassifier(strategy="UDT-ES", engine=BENCH_ENGINE).fit(training))

    # Shape check: UDT should not lose badly to AVG in any configuration.
    # (At bench scale the per-fold variance is high, so the tight claim is
    # enforced on the aggregate in bench_table3_report instead.)
    for result in results:
        assert result.udt_accuracy >= result.avg_accuracy - 0.15, result


def bench_table3_report(benchmark):
    """Aggregate the collected rows into the Table 3 reproduction artefact."""
    benchmark(lambda: format_accuracy_results(_collected_rows))
    body = format_accuracy_results(_collected_rows)
    wins = sum(1 for r in _collected_rows if r.improvement >= -1e-9)
    body += (
        f"\n\nUDT >= AVG in {wins} of {len(_collected_rows)} configurations "
        "(the paper reports UDT ahead in almost all, with a handful of '#' exceptions)."
    )
    save_artifact("table3_accuracy", "Table 3 — AVG vs UDT accuracy", body)
    save_json_artifact(
        "table3",
        [
            {
                "dataset": r.dataset,
                "error_model": r.error_model,
                "width_fraction": r.width_fraction,
                "avg_accuracy": r.avg_accuracy,
                "udt_accuracy": r.udt_accuracy,
            }
            for r in _collected_rows
        ],
        params={"folds": _BENCH_FOLDS, "seed": 17},
        extra={"udt_wins": wins, "n_configurations": len(_collected_rows)},
    )
    assert wins >= len(_collected_rows) * 0.6
