"""Consistent hashing: a stable model → replica mapping.

The router keys routing on the *model name*, not the request, so every
request for one model lands on the same replica — its lazy-loaded archive,
its per-model LRU prediction cache and its micro-batching coalescer all
stay warm.  Consistent hashing makes that mapping stable under membership
churn: each replica owns many small arcs of a hash circle (``replicas``
virtual points per member), a key routes to the first point clockwise of
its own hash, and adding or removing one member therefore remaps only the
arcs that member owned — about ``1/N`` of the key space — instead of
reshuffling every model onto a cold replica.

Hashing is :func:`hashlib.blake2b` over UTF-8 bytes, so the ring is
deterministic across processes, platforms and Python versions (no
``PYTHONHASHSEED`` dependence): every router instance in a fleet computes
the identical mapping from the identical member list.

:meth:`HashRing.owners` generalises routing to the first *k* distinct
members clockwise — the assignment the router's forest fan-out uses to
spread member shards of one hot ensemble across several replicas.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]

#: Virtual points per member.  Enough that the largest/smallest ownership
#: imbalance stays small at single-digit member counts, small enough that
#: rebuilding the ring on a health transition is sub-millisecond.
DEFAULT_VNODES = 64


def _hash64(key: str) -> int:
    """64-bit position of ``key`` on the circle (stable across processes)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash circle over a set of member identifiers.

    Members are plain strings (the router uses replica base URLs).  The
    ring is immutable once built — membership changes construct a new ring
    via :meth:`with_members` — which keeps lookups lock-free for the many
    handler threads that share one instance.
    """

    def __init__(self, members, *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be at least 1, got {vnodes}")
        self.vnodes = int(vnodes)
        # Deduplicate but keep a canonical sorted order, so two routers fed
        # the same member set build bit-identical rings regardless of the
        # order health transitions arrived in.
        self.members = tuple(sorted(set(members)))
        points = []
        for member in self.members:
            for index in range(self.vnodes):
                points.append((_hash64(f"{member}#{index}"), member))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [member for _, member in points]

    def __len__(self) -> int:
        return len(self.members)

    def __bool__(self) -> bool:
        return bool(self.members)

    def __contains__(self, member: str) -> bool:
        return member in self.members

    def with_members(self, members) -> "HashRing":
        """A new ring over ``members`` with the same virtual-point count."""
        return HashRing(members, vnodes=self.vnodes)

    def route(self, key: str) -> str:
        """The member owning ``key`` (first virtual point clockwise)."""
        owners = self.owners(key, 1)
        if not owners:
            raise LookupError("cannot route on an empty ring")
        return owners[0]

    def owners(self, key: str, count: int) -> "list[str]":
        """The first ``count`` *distinct* members clockwise of ``key``.

        ``owners(key, 1)[0]`` is the routing target; the tail is the
        deterministic failover/fan-out order.  Returns fewer members when
        the ring holds fewer than ``count``.
        """
        if not self.members or count < 1:
            return []
        count = min(count, len(self.members))
        start = bisect.bisect_right(self._positions, _hash64(key))
        found: "list[str]" = []
        seen = set()
        for offset in range(len(self._owners)):
            member = self._owners[(start + offset) % len(self._owners)]
            if member not in seen:
                seen.add(member)
                found.append(member)
                if len(found) == count:
                    break
        return found
