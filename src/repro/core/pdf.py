"""Probability density functions over bounded intervals.

The paper represents the value of an uncertain numerical attribute not by a
single number but by a pdf ``f`` that is non-zero only inside a bounded
interval ``[a, b]`` (Section 3.2).  Following the paper's "numerical
approach", a pdf is stored as a set of *s* sample points together with the
probability mass carried by each point — i.e. a discrete approximation of the
continuous density.  Storing the cumulative distribution alongside the
samples makes the integrations required by tree construction (the "left
probability" ``p_L`` of a split) a cheap array lookup.

The central class is :class:`SampledPdf`.  Factory helpers build the pdf
shapes used throughout the paper's experiments:

* :meth:`SampledPdf.uniform` — quantisation-style error model,
* :meth:`SampledPdf.gaussian` — truncated Gaussian measurement-error model
  (the Gaussian is chopped at both ends and renormalised, footnote 5),
* :meth:`SampledPdf.point` — a degenerate point-mass pdf (certain data),
* :meth:`SampledPdf.from_samples` — empirical pdf built from repeated
  measurements (used for the JapaneseVowel-style data).

All pdfs are immutable; operations such as :meth:`SampledPdf.truncate_left`
return new objects.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import PdfError

__all__ = ["Pdf", "SampledPdf"]

#: Numerical tolerance used when validating that probability masses sum to 1.
_MASS_TOLERANCE = 1e-9


class Pdf:
    """Abstract interface of a bounded probability density function.

    Concrete pdfs expose a discrete view (sample positions and masses), the
    cumulative distribution, the mean, and truncation operations used when a
    tuple is split into fractional tuples at a decision-tree node.
    """

    __slots__ = ()

    @property
    def low(self) -> float:
        """Lower end point ``a`` of the pdf's support."""
        raise NotImplementedError

    @property
    def high(self) -> float:
        """Upper end point ``b`` of the pdf's support."""
        raise NotImplementedError

    @property
    def xs(self) -> np.ndarray:
        """Sorted sample positions of the discrete approximation."""
        raise NotImplementedError

    @property
    def masses(self) -> np.ndarray:
        """Probability mass carried by each sample position (sums to 1)."""
        raise NotImplementedError

    def mean(self) -> float:
        """Expected value of the pdf."""
        raise NotImplementedError

    def prob_leq(self, z: float) -> float:
        """Probability mass in ``(-inf, z]`` — the ``p_L`` of a split at ``z``."""
        raise NotImplementedError

    def truncate_left(self, z: float) -> "Pdf":
        """Pdf conditioned on the value being ``<= z`` (renormalised)."""
        raise NotImplementedError

    def truncate_right(self, z: float) -> "Pdf":
        """Pdf conditioned on the value being ``> z`` (renormalised)."""
        raise NotImplementedError


class SampledPdf(Pdf):
    """A pdf approximated by a finite set of weighted sample points.

    Parameters
    ----------
    xs:
        Sample positions.  They need not be sorted or unique; the constructor
        sorts them and merges duplicates.
    masses:
        Non-negative probability mass per sample position.  The masses are
        normalised to sum to one unless ``normalise=False`` is passed, in
        which case they must already sum to one.
    kind:
        A free-form tag describing how the pdf was generated (``"uniform"``,
        ``"gaussian"``, ``"point"``, ``"empirical"``, or ``"custom"``).  The
        tag is metadata only, except that split-finding strategies may use
        ``kind == "uniform"`` to apply Theorem 3 (end points suffice).

    Raises
    ------
    PdfError
        If no sample point is given, any mass is negative, or the total mass
        is zero (or, with ``normalise=False``, not equal to one).
    """

    __slots__ = ("_xs", "_masses", "_cumulative", "_mean", "kind")

    def __init__(
        self,
        xs: Iterable[float],
        masses: Iterable[float],
        *,
        kind: str = "custom",
        normalise: bool = True,
    ) -> None:
        xs_arr = np.asarray(list(xs) if not isinstance(xs, np.ndarray) else xs, dtype=float)
        mass_arr = np.asarray(
            list(masses) if not isinstance(masses, np.ndarray) else masses, dtype=float
        )
        if xs_arr.ndim != 1 or mass_arr.ndim != 1:
            raise PdfError("sample positions and masses must be one-dimensional")
        if xs_arr.size == 0:
            raise PdfError("a pdf needs at least one sample point")
        if xs_arr.shape != mass_arr.shape:
            raise PdfError(
                f"positions and masses differ in length ({xs_arr.size} vs {mass_arr.size})"
            )
        if np.any(~np.isfinite(xs_arr)) or np.any(~np.isfinite(mass_arr)):
            raise PdfError("sample positions and masses must be finite")
        if np.any(mass_arr < 0):
            raise PdfError("probability masses must be non-negative")

        order = np.argsort(xs_arr, kind="stable")
        xs_arr = xs_arr[order]
        mass_arr = mass_arr[order]

        # Merge duplicate positions so that the cdf is a proper step function.
        if xs_arr.size > 1 and np.any(np.diff(xs_arr) == 0.0):
            unique_xs, inverse = np.unique(xs_arr, return_inverse=True)
            merged = np.zeros_like(unique_xs)
            np.add.at(merged, inverse, mass_arr)
            xs_arr, mass_arr = unique_xs, merged

        total = float(mass_arr.sum())
        if total <= 0.0:
            raise PdfError("total probability mass must be positive")
        if normalise:
            mass_arr = mass_arr / total
        elif abs(total - 1.0) > _MASS_TOLERANCE:
            raise PdfError(f"masses must sum to 1 (got {total!r})")

        self._xs = xs_arr
        self._masses = mass_arr
        self._cumulative = np.cumsum(mass_arr)
        # Guard against floating point drift in the final cumulative value.
        self._cumulative[-1] = 1.0
        self._mean = float(np.dot(xs_arr, mass_arr))
        self.kind = kind

    # -- basic properties -------------------------------------------------

    @property
    def low(self) -> float:
        return float(self._xs[0])

    @property
    def high(self) -> float:
        return float(self._xs[-1])

    @property
    def xs(self) -> np.ndarray:
        return self._xs

    @property
    def masses(self) -> np.ndarray:
        return self._masses

    @property
    def cumulative(self) -> np.ndarray:
        """Cumulative masses aligned with :attr:`xs` (last entry is 1)."""
        return self._cumulative

    @property
    def n_samples(self) -> int:
        """Number of distinct sample positions."""
        return int(self._xs.size)

    @property
    def is_point(self) -> bool:
        """Whether the pdf is a degenerate point mass."""
        return self._xs.size == 1

    def mean(self) -> float:
        return self._mean

    def variance(self) -> float:
        """Variance of the discrete approximation."""
        centred = self._xs - self._mean
        return float(np.dot(centred * centred, self._masses))

    # -- probability queries ----------------------------------------------

    def prob_leq(self, z: float) -> float:
        """Probability mass located at positions ``<= z``."""
        idx = int(np.searchsorted(self._xs, z, side="right"))
        if idx == 0:
            return 0.0
        return float(self._cumulative[idx - 1])

    def prob_between(self, a: float, b: float) -> float:
        """Probability mass in the half-open interval ``(a, b]``."""
        if b < a:
            raise PdfError(f"invalid interval ({a!r}, {b!r}]")
        return self.prob_leq(b) - self.prob_leq(a)

    # -- truncation (fractional tuples) -----------------------------------

    def truncate_left(self, z: float) -> "SampledPdf":
        """Return the pdf conditioned on the value being ``<= z``.

        This is the pdf inherited by the "left" fractional tuple when the
        parent tuple is split at ``z`` (Section 3.2).  Raises
        :class:`PdfError` if the left part carries no probability mass.
        """
        idx = int(np.searchsorted(self._xs, z, side="right"))
        if idx == 0:
            raise PdfError(f"no probability mass at or below split point {z!r}")
        return SampledPdf(self._xs[:idx], self._masses[:idx], kind=self.kind)

    def truncate_right(self, z: float) -> "SampledPdf":
        """Return the pdf conditioned on the value being ``> z``."""
        idx = int(np.searchsorted(self._xs, z, side="right"))
        if idx >= self._xs.size:
            raise PdfError(f"no probability mass above split point {z!r}")
        return SampledPdf(self._xs[idx:], self._masses[idx:], kind=self.kind)

    def split_at(self, z: float) -> tuple[float, "SampledPdf | None", "SampledPdf | None"]:
        """Split the pdf at ``z`` into left/right conditional pdfs.

        Returns a triple ``(p_left, left_pdf, right_pdf)``.  A side with zero
        probability mass is returned as ``None`` rather than raising, which
        is the common case during tree construction when the split point lies
        outside the pdf's support.
        """
        p_left = self.prob_leq(z)
        left = self.truncate_left(z) if p_left > 0.0 else None
        right = self.truncate_right(z) if p_left < 1.0 else None
        return p_left, left, right

    # -- factories ---------------------------------------------------------

    @classmethod
    def point(cls, value: float) -> "SampledPdf":
        """Degenerate pdf placing all mass on a single value."""
        return cls([value], [1.0], kind="point")

    @classmethod
    def uniform(cls, low: float, high: float, n_samples: int = 100) -> "SampledPdf":
        """Uniform pdf over ``[low, high]`` sampled at ``n_samples`` points.

        Used by the paper to model quantisation noise.  A zero-width interval
        degenerates to a point mass.
        """
        if high < low:
            raise PdfError(f"invalid support [{low!r}, {high!r}]")
        if n_samples < 1:
            raise PdfError("n_samples must be at least 1")
        if high == low or n_samples == 1:
            return cls.point((low + high) / 2.0)
        xs = np.linspace(low, high, n_samples)
        masses = np.full(n_samples, 1.0 / n_samples)
        return cls(xs, masses, kind="uniform")

    @classmethod
    def gaussian(
        cls,
        mean: float,
        std: float,
        low: float | None = None,
        high: float | None = None,
        n_samples: int = 100,
    ) -> "SampledPdf":
        """Truncated Gaussian pdf.

        The Gaussian is restricted to ``[low, high]`` (defaulting to
        ``mean ± 2·std``, matching the paper's choice of a standard deviation
        equal to a quarter of the interval width) and renormalised, as
        described in footnote 5 of the paper.
        """
        if std < 0:
            raise PdfError("standard deviation must be non-negative")
        if std == 0:
            return cls.point(mean)
        if low is None:
            low = mean - 2.0 * std
        if high is None:
            high = mean + 2.0 * std
        if high <= low:
            raise PdfError(f"invalid support [{low!r}, {high!r}]")
        if n_samples < 1:
            raise PdfError("n_samples must be at least 1")
        if n_samples == 1:
            return cls.point(mean)
        xs = np.linspace(low, high, n_samples)
        z = (xs - mean) / std
        density = np.exp(-0.5 * z * z)
        total = float(density.sum())
        if total <= 0.0:
            # The support lies far in the Gaussian tail; fall back to uniform
            # mass so the pdf remains well defined.
            return cls.uniform(low, high, n_samples)
        return cls(xs, density / total, kind="gaussian")

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> "SampledPdf":
        """Empirical pdf built from repeated measurements.

        Each measurement contributes equal mass (or the given ``weights``).
        This mirrors how the paper models the JapaneseVowel data set, whose
        attributes carry 7–29 raw samples each.
        """
        samples_arr = np.asarray(samples, dtype=float)
        if samples_arr.size == 0:
            raise PdfError("at least one sample is required")
        if weights is None:
            masses = np.full(samples_arr.size, 1.0 / samples_arr.size)
        else:
            masses = np.asarray(weights, dtype=float)
        return cls(samples_arr, masses, kind="empirical")

    # -- dunder helpers -----------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SampledPdf(kind={self.kind!r}, support=[{self.low:.4g}, {self.high:.4g}], "
            f"n_samples={self.n_samples}, mean={self._mean:.4g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SampledPdf):
            return NotImplemented
        return (
            self._xs.shape == other._xs.shape
            and bool(np.allclose(self._xs, other._xs))
            and bool(np.allclose(self._masses, other._masses))
        )

    def __hash__(self) -> int:
        return hash((self._xs.tobytes(), self._masses.tobytes()))
