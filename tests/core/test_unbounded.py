"""Unit tests for :mod:`repro.core.unbounded` (percentile pseudo end points, Sec. 7.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SampledPdf, UncertainTuple
from repro.core.dispersion import EntropyMeasure
from repro.core.splits import build_contexts
from repro.core.stats import SplitSearchStats
from repro.core.strategies import UDTStrategy
from repro.core.unbounded import PercentileGPStrategy, percentile_pseudo_end_points
from repro.exceptions import SplitError


def _contexts(seed=0):
    rng = np.random.default_rng(seed)
    tuples = []
    for _ in range(30):
        centre = rng.normal(0.0, 1.0)
        tuples.append(UncertainTuple([SampledPdf.gaussian(centre, 0.3, n_samples=20)], "a"))
    for _ in range(30):
        centre = rng.normal(2.5, 1.0)
        tuples.append(UncertainTuple([SampledPdf.gaussian(centre, 0.3, n_samples=20)], "b"))
    return build_contexts(tuples, [0], ["a", "b"])


class TestPseudoEndPoints:
    def test_requires_percentiles_in_range(self):
        context = _contexts()[0]
        with pytest.raises(SplitError):
            percentile_pseudo_end_points(context, percentiles=())
        with pytest.raises(SplitError):
            percentile_pseudo_end_points(context, percentiles=(0.0,))
        with pytest.raises(SplitError):
            percentile_pseudo_end_points(context, percentiles=(150.0,))

    def test_pseudo_points_are_sorted_and_within_domain(self):
        context = _contexts()[0]
        points = percentile_pseudo_end_points(context)
        assert np.all(np.diff(points) > 0)
        assert points[0] >= context.end_points[0]
        assert points[-1] <= context.end_points[-1]

    def test_count_bounded_by_classes_times_percentiles(self):
        context = _contexts()[0]
        points = percentile_pseudo_end_points(context, percentiles=(25, 50, 75))
        # at most |C| * |percentiles| + 2 boundary points
        assert points.size <= context.n_classes * 3 + 2

    def test_includes_domain_extremes(self):
        context = _contexts()[0]
        points = percentile_pseudo_end_points(context)
        assert context.end_points[0] in points
        assert context.end_points[-1] in points


class TestPercentileGPStrategy:
    def test_finds_a_reasonable_split(self):
        contexts = _contexts(seed=1)
        reference = UDTStrategy().find_best_split(contexts, EntropyMeasure(), SplitSearchStats())
        heuristic = PercentileGPStrategy().find_best_split(
            contexts, EntropyMeasure(), SplitSearchStats()
        )
        assert heuristic.is_valid
        # The heuristic is allowed to be slightly suboptimal but not terrible.
        assert heuristic.dispersion <= reference.dispersion + 0.05

    def test_does_fewer_evaluations_than_exhaustive(self):
        contexts = _contexts(seed=2)
        exhaustive_stats = SplitSearchStats()
        UDTStrategy().find_best_split(contexts, EntropyMeasure(), exhaustive_stats)
        heuristic_stats = SplitSearchStats()
        PercentileGPStrategy().find_best_split(contexts, EntropyMeasure(), heuristic_stats)
        assert (
            heuristic_stats.total_entropy_like_calculations
            < exhaustive_stats.total_entropy_like_calculations
        )

    def test_works_inside_tree_builder(self, small_uncertain):
        from repro.core import TreeBuilder

        tree = TreeBuilder(strategy=PercentileGPStrategy()).build(small_uncertain).tree
        assert tree.accuracy(small_uncertain) > 0.85
