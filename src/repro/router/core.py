"""The router: health-gated consistent-hash proxying with forest fan-out.

:class:`Router` is the transport-independent heart of the tier — the HTTP
front-end (:mod:`repro.router.http`) is a thin shell over it.  One router
instance owns:

* a :class:`~repro.router.health.HealthChecker` over the fixed replica
  set, feeding verdict changes into
* a :class:`~repro.router.ring.HashRing` over the *in-service* replicas
  (healthy and not draining), rebuilt on every transition, keyed by model
  name so each model's archive, prediction cache and coalescer stay warm
  on its owner replica;
* one :class:`~repro.serve.client.ServingClient` per replica (reused
  across requests), with per-replica in-flight counters — the thing
  :meth:`drain` waits on;
* a TTL-cached model catalog aggregated from ``GET /v1/models`` across
  in-service replicas (invalidated on ring changes);
* a :class:`~repro.router.metrics.RouterMetrics` registry.

Routing semantics:

* transport failures (connection refused/reset — ``ServingError`` with
  ``status None``) and upstream 502/503/504 walk the ring's successor
  list; transport failures also feed passive health, so a dead replica
  is ejected by live traffic without waiting for the prober;
* 4xx answers — including 429 admission-control shedding with its
  ``Retry-After`` hint — are real decisions by a live server and
  propagate to the caller verbatim;
* no in-service replica at all is a 503 with ``Retry-After`` set to one
  health-check interval: by then the prober has re-examined everyone.

**Forest fan-out**: for ``kind: "forest"`` models with at least
``fanout_trees`` members, a predict is sharded across the first *k*
owners of the model on the ring — each shard computes the per-member
vote matrices of one contiguous member range (``{"votes": true,
"members": [...]}``) and the router folds them back with
:func:`repro.ensemble.sharding.reduce_votes` **in global member order**,
which reproduces the single-process soft-vote reduction bit for bit
(float addition is non-associative, so the fold order is the contract —
see ``tests/router/test_router_e2e.py``).  Any shard failure falls back
to plain single-replica routing, which is always correct.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.ensemble.sharding import partition_members, reduce_votes
from repro.exceptions import ServingError
from repro.obs.log import get_logger
from repro.obs.trace import NO_TRACE
from repro.router.health import HealthChecker
from repro.router.metrics import RouterMetrics
from repro.router.ring import DEFAULT_VNODES, HashRing
from repro.router.sync import sync_archives
from repro.serve.client import ServingClient

__all__ = ["Router"]

_log = get_logger(__name__)

#: Upstream statuses worth retrying on another replica: the gateway-ish
#: ones a restarting or shutting-down replica emits.  4xx (including 429)
#: and 500 are deterministic answers and propagate.
_RETRYABLE_STATUSES = frozenset({502, 503, 504})


def _retryable(exc: ServingError) -> bool:
    return exc.status is None or exc.status in _RETRYABLE_STATUSES


class Router:
    """Routes serving traffic across a fixed set of replica endpoints."""

    def __init__(
        self,
        replicas,
        *,
        health_interval_s: float = 2.0,
        health_timeout_s: float = 1.0,
        up_after: int = 2,
        down_after: int = 2,
        vnodes: int = DEFAULT_VNODES,
        fanout_trees: int = 32,
        fanout_shards: int = 0,
        upstream_timeout_s: float = 30.0,
        sync_source=None,
        sync_dests=(),
        sync_interval_s: float = 0.0,
        catalog_ttl_s: float = 2.0,
        probe=None,
    ) -> None:
        urls = [url.rstrip("/") for url in replicas]
        if len(set(urls)) != len(urls):
            raise ServingError("replica URLs must be unique")
        if fanout_trees < 2:
            raise ServingError(f"fanout_trees must be at least 2, got {fanout_trees}")
        if fanout_shards < 0:
            raise ServingError(f"fanout_shards must be >= 0, got {fanout_shards}")
        self.fanout_trees = int(fanout_trees)
        self.fanout_shards = int(fanout_shards)  # 0 = every in-service replica
        self.catalog_ttl_s = float(catalog_ttl_s)
        self.sync_source = sync_source
        self.sync_dests = [str(dest) for dest in sync_dests]
        self.sync_interval_s = float(sync_interval_s)
        if self.sync_dests and self.sync_source is None:
            raise ServingError("sync destinations need a sync source directory")
        self.metrics = RouterMetrics()
        checker_kwargs = dict(
            interval_s=health_interval_s,
            timeout_s=health_timeout_s,
            up_after=up_after,
            down_after=down_after,
            on_change=self._on_health_change,
        )
        if probe is not None:
            checker_kwargs["probe"] = probe
        self.health = HealthChecker(urls, **checker_kwargs)
        self._clients = {
            url: ServingClient(url, timeout=upstream_timeout_s)
            for url in self.health.urls
        }
        self._ring_lock = threading.Lock()
        self._ring = HashRing((), vnodes=vnodes)
        self._inflight = {url: 0 for url in self.health.urls}
        self._inflight_lock = threading.Condition()
        self._catalog_lock = threading.Lock()
        self._catalog: "dict | None" = None
        self._catalog_at = 0.0
        # Fan-out shards are dispatched concurrently so a sharded predict
        # costs one upstream round-trip, not k of them.
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(urls)), thread_name_prefix="repro-router-fanout"
        )
        self._sync_stop = threading.Event()
        self._sync_thread: "threading.Thread | None" = None
        self._closed = False
        for url in self.health.urls:
            self.metrics.set_replica_health(url, None)
            self.metrics.set_replica_draining(url, False)
        self.metrics.set_ring_size(0)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Sync once, probe every replica once, then start the loops."""
        if self.sync_source is not None and self.sync_dests:
            self.sync_once()
            if self.sync_interval_s > 0:
                self._sync_thread = threading.Thread(
                    target=self._sync_loop, name="repro-router-sync", daemon=True
                )
                self._sync_thread.start()
        # A synchronous first sweep means the ring is populated before the
        # first request arrives instead of one poll interval later.
        self.health.check_once()
        self.health.start()

    def close(self) -> None:
        self._closed = True
        self._sync_stop.set()
        if self._sync_thread is not None:
            self._sync_thread.join(timeout=self.sync_interval_s + 1.0)
            self._sync_thread = None
        self.health.close()
        self._executor.shutdown(wait=False)

    # -- registry sync ---------------------------------------------------------

    def sync_once(self):
        """One archive sweep from the source of truth to every replica dir."""
        return sync_archives(self.sync_source, self.sync_dests)

    def _sync_loop(self) -> None:
        while not self._sync_stop.wait(self.sync_interval_s):
            try:
                self.sync_once()
            except Exception:  # noqa: BLE001 - the sync loop must never die
                pass

    # -- ring maintenance ------------------------------------------------------

    def _on_health_change(self) -> None:
        in_service = self.health.in_service_urls()
        with self._ring_lock:
            self._ring = self._ring.with_members(in_service)
            ring = self._ring
        for state in self.health.describe():
            self.metrics.set_replica_health(state["url"], state["healthy"])
            self.metrics.set_replica_draining(state["url"], state["draining"])
        self.metrics.set_ring_size(len(ring))
        with self._catalog_lock:
            self._catalog = None

    @property
    def ring(self) -> HashRing:
        with self._ring_lock:
            return self._ring

    def describe(self) -> dict:
        """Topology snapshot for ``/healthz`` and ``/admin/replicas``."""
        ring = self.ring
        with self._inflight_lock:
            inflight = dict(self._inflight)
        replicas = []
        for state in self.health.describe():
            entry = dict(state)
            entry["in_ring"] = state["url"] in ring
            entry["inflight"] = inflight.get(state["url"], 0)
            replicas.append(entry)
        return {
            "replicas": replicas,
            "ring_size": len(ring),
            "ring_members": list(ring.members),
        }

    # -- upstream calls --------------------------------------------------------

    def _call(
        self,
        url: str,
        path: str,
        body: "dict | None" = None,
        headers: "dict | None" = None,
    ) -> dict:
        """One tracked request to one replica (in-flight counted, health fed)."""
        with self._inflight_lock:
            self._inflight[url] += 1
        try:
            payload = self._clients[url].request_json(path, body, headers=headers)
        except ServingError as exc:
            if exc.status is None:
                self.health.note_failure(url)
            raise
        finally:
            with self._inflight_lock:
                self._inflight[url] -= 1
                self._inflight_lock.notify_all()
        self.metrics.record_routed(url)
        return payload

    def _no_replica_error(self) -> ServingError:
        self.metrics.record_unavailable()
        return ServingError(
            "no replica is in service",
            status=503,
            retry_after=self.health.interval_s,
        )

    def _route_call(
        self,
        key: str,
        path: str,
        body: "dict | None" = None,
        *,
        trace=NO_TRACE,
        meta: "dict | None" = None,
    ) -> dict:
        """Proxy one request to ``key``'s owner, failing over along the ring.

        Each upstream attempt becomes one ``route`` span (tagged with the
        target and attempt number), so a failover shows up in the trace as
        an errored span followed by the successor's.  ``meta`` (when given)
        is filled with ``hops`` — the number of upstream calls it took —
        and the final ``upstream``; the HTTP layer surfaces both as
        ``X-Repro-Hops`` / ``X-Repro-Upstream`` response headers.
        """
        ring = self.ring
        if not ring:
            raise self._no_replica_error()
        targets = ring.owners(key, len(ring))
        route_started = time.perf_counter()
        last_error: "ServingError | None" = None
        for attempt, url in enumerate(targets):
            if attempt:
                self.metrics.record_retry()
            span = trace.span(
                "route", model=key, tags={"upstream": url, "attempt": attempt}
            )
            try:
                result = self._call(url, path, body, headers=trace.headers(span.span_id))
            except ServingError as exc:
                span.set_tag("error", str(exc))
                span.end(status="error")
                if not _retryable(exc):
                    if meta is not None:
                        meta["hops"] = attempt + 1
                        meta["upstream"] = url
                    raise
                _log.warning(
                    "router_failover",
                    key=key,
                    upstream=url,
                    status=exc.status,
                    attempt=attempt,
                    reason=str(exc),
                )
                last_error = exc
                continue
            span.end()
            self.metrics.record_stage("route", time.perf_counter() - route_started)
            if meta is not None:
                meta["hops"] = attempt + 1
                meta["upstream"] = url
            return result
        assert last_error is not None
        if meta is not None:
            meta["hops"] = len(targets)
        raise last_error

    # -- catalog ---------------------------------------------------------------

    def catalog(self) -> "dict[str, dict]":
        """Aggregated ``/v1/models`` entries by name, across the ring."""
        now = time.monotonic()
        with self._catalog_lock:
            if self._catalog is not None and now - self._catalog_at < self.catalog_ttl_s:
                return self._catalog
        entries: "dict[str, dict]" = {}
        for url in self.ring.members:
            try:
                payload = self._call(url, "/v1/models")
            except ServingError:
                continue
            for entry in payload.get("models", []):
                name = entry.get("name")
                if not name:
                    continue
                known = entries.get(name)
                # Replicas hold synced copies of the same archives; prefer
                # whichever entry loaded cleanly if one replica had trouble.
                if known is None or (known.get("error") and not entry.get("error")):
                    entries[name] = entry
        with self._catalog_lock:
            self._catalog = entries
            self._catalog_at = time.monotonic()
        return entries

    def models(self) -> "list[dict]":
        """The aggregated listing, sorted by name like a replica's registry."""
        if not self.ring:
            raise self._no_replica_error()
        return [entry for _, entry in sorted(self.catalog().items())]

    def model(self, name: str) -> dict:
        """Metadata of one model, proxied to its owner replica."""
        return self._route_call(name, f"/v1/models/{name}")

    # -- prediction ------------------------------------------------------------

    def predict(
        self,
        model_name: str,
        payload: dict,
        *,
        trace=NO_TRACE,
        meta: "dict | None" = None,
    ) -> dict:
        """Route one ``:predict`` body; fan a large forest out across shards.

        ``trace`` is the caller's request trace (spans for every routing
        decision are recorded into it); ``meta`` is an out-parameter dict
        filled with ``hops`` / ``upstream`` (and ``shards`` when fan-out
        served the request) for response headers.
        """
        started = time.perf_counter()
        try:
            response = self._predict(model_name, payload, trace, meta)
        except ServingError as exc:
            if exc.status == 429:
                self.metrics.record_upstream_429()
            self.metrics.record_error(exc.status or 503)
            raise
        self.metrics.record_latency(model_name, time.perf_counter() - started)
        return response

    def _predict(
        self, model_name: str, payload: dict, trace=NO_TRACE, meta: "dict | None" = None
    ) -> dict:
        path = f"/v1/models/{model_name}:predict"
        rows = payload.get("rows")
        wants_votes = bool(payload.get("votes", False))
        if (
            not wants_votes
            and isinstance(rows, list)
            and rows
            and len(self.ring) >= 2
        ):
            plan = self._fanout_plan(model_name)
            if plan is not None:
                try:
                    return self._predict_fanout(model_name, payload, plan, trace, meta)
                except ServingError as exc:
                    if not _retryable(exc):
                        raise
                    # A shard could not be served anywhere; single-replica
                    # routing is always a correct (if slower) answer.
                    self.metrics.record_retry()
                    _log.warning(
                        "router_fanout_fallback",
                        model=model_name,
                        status=exc.status,
                        reason=str(exc),
                    )
        return self._route_call(model_name, path, payload, trace=trace, meta=meta)

    def _fanout_plan(self, model_name: str) -> "tuple[int, list[str]] | None":
        """``(n_trees, shard targets)`` when fan-out applies, else ``None``."""
        entry = self.catalog().get(model_name)
        if entry is None or entry.get("error"):
            return None
        if entry.get("model_kind") != "forest":
            return None
        n_trees = entry.get("n_trees")
        if not isinstance(n_trees, int) or n_trees < self.fanout_trees:
            return None
        ring = self.ring
        shards = len(ring) if self.fanout_shards == 0 else min(self.fanout_shards, len(ring))
        shards = min(shards, n_trees)
        if shards < 2:
            return None
        return n_trees, ring.owners(model_name, shards)

    def _votes_shard(
        self, path: str, rows, members, order, trace=NO_TRACE, parent_id=None
    ):
        """One member-range votes call, tried along ``order`` until served.

        Returns ``(payload, hops)`` — the shard's response and how many
        upstream calls it took.  Runs on an executor thread, so its
        ``route`` spans are recorded straight into the (thread-safe)
        request trace, parented under the fan-out span.
        """
        body = {"rows": rows, "votes": True, "members": members}
        member_range = f"{members[0]}-{members[-1]}" if members else ""
        last_error: "ServingError | None" = None
        for attempt, url in enumerate(order):
            if attempt:
                self.metrics.record_retry()
            span = trace.span(
                "route",
                parent_id=parent_id,
                tags={"upstream": url, "attempt": attempt, "members": member_range},
            )
            try:
                result = self._call(
                    url, path, body, headers=trace.headers(span.span_id)
                )
            except ServingError as exc:
                span.set_tag("error", str(exc))
                span.end(status="error")
                if not _retryable(exc):
                    raise
                _log.warning(
                    "router_failover",
                    upstream=url,
                    status=exc.status,
                    attempt=attempt,
                    members=member_range,
                    reason=str(exc),
                )
                last_error = exc
                continue
            span.end()
            return result, attempt + 1
        assert last_error is not None
        raise last_error

    def _predict_fanout(
        self,
        model_name: str,
        payload: dict,
        plan,
        trace=NO_TRACE,
        meta: "dict | None" = None,
    ) -> dict:
        n_trees, targets = plan
        path = f"/v1/models/{model_name}:predict"
        rows = payload["rows"]
        parts = partition_members(n_trees, len(targets))
        fanout_span = trace.span(
            "fanout",
            model=model_name,
            tags={"shards": len(targets), "n_trees": n_trees},
        )
        fanout_perf = time.perf_counter()
        # Every replica holds the full synced archive, so a shard whose
        # assigned owner dies mid-request can be served by any survivor:
        # its failover order is the other targets, then the rest of the ring.
        ring = self.ring
        fallbacks = [url for url in ring.owners(model_name, len(ring))]
        futures = []
        for target, members in zip(targets, parts):
            order = [target] + [url for url in fallbacks if url != target]
            futures.append(
                self._executor.submit(
                    self._votes_shard,
                    path,
                    rows,
                    list(members),
                    order,
                    trace,
                    fanout_span.span_id,
                )
            )
        shards = []
        hops = 0
        errors: "list[BaseException]" = []
        for future in futures:
            try:
                shard, shard_hops = future.result()
                shards.append(shard)
                hops += shard_hops
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            fanout_span.set_tag("error", str(errors[0]))
            fanout_span.end(status="error")
            raise errors[0]
        fanout_span.end()
        self.metrics.record_stage("fanout", time.perf_counter() - fanout_perf)
        if meta is not None:
            meta["hops"] = hops
            meta["shards"] = len(shards)
        classes = shards[0]["classes"]
        totals = {int(shard["n_members_total"]) for shard in shards}
        if len(totals) != 1 or any(shard["classes"] != classes for shard in shards):
            # A replica mid-deploy answered from a different archive
            # generation; reducing mixed generations could change answers,
            # so treat it like a transient failure (the caller falls back).
            raise ServingError(
                f"replicas disagree on forest {model_name!r}; archives are syncing",
                status=503,
                retry_after=self.health.interval_s,
            )
        n_members_total = totals.pop()
        if sum(int(shard["n_members"]) for shard in shards) != n_members_total:
            raise ServingError(
                f"forest {model_name!r} changed size mid-request; retry",
                status=503,
                retry_after=self.health.interval_s,
            )
        # Shards are contiguous member ranges in ascending order, so
        # concatenating along the member axis restores the global member
        # order and reduce_votes folds exactly like the single process.
        reduce_wall = time.time()
        reduce_perf = time.perf_counter()
        votes = np.concatenate(
            [np.asarray(shard["votes"], dtype=float) for shard in shards], axis=0
        )
        probabilities = reduce_votes(votes, n_members_total)
        labels = [classes[int(index)] for index in np.argmax(probabilities, axis=1)]
        reduce_s = time.perf_counter() - reduce_perf
        self.metrics.record_stage("reduce", reduce_s)
        trace.record(
            "reduce",
            start_s=reduce_wall,
            duration_s=reduce_s,
            model=model_name,
            tags={"n_members": int(n_members_total), "rows": len(labels)},
        )
        self.metrics.record_fanout(len(shards))
        response = {"model": model_name, "labels": labels, "classes": classes}
        if payload.get("proba", True):
            response["probabilities"] = probabilities.tolist()
        return response

    # -- drain-on-deploy -------------------------------------------------------

    def drain(self, replica: str, *, timeout_s: float = 10.0) -> dict:
        """Remove ``replica`` from the ring and wait out its in-flight work.

        Returns ``{"replica", "draining", "drained", "waited_s",
        "inflight"}``; ``drained`` is ``False`` when in-flight requests
        remained at the deadline (the replica stays draining either way —
        :meth:`undrain` puts it back).  Unknown replicas raise
        :class:`~repro.exceptions.ServingError` (404).
        """
        url = replica.rstrip("/")
        try:
            self.health.set_draining(url, True)
        except KeyError:
            raise ServingError(f"unknown replica {replica!r}", status=404) from None
        started = time.monotonic()
        deadline = started + max(0.0, float(timeout_s))
        with self._inflight_lock:
            while self._inflight[url] > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_lock.wait(remaining)
            inflight = self._inflight[url]
        return {
            "replica": url,
            "draining": True,
            "drained": inflight == 0,
            "waited_s": time.monotonic() - started,
            "inflight": inflight,
        }

    def undrain(self, replica: str) -> dict:
        """Return a drained replica to service (health verdict permitting)."""
        url = replica.rstrip("/")
        try:
            state = self.health.set_draining(url, False)
        except KeyError:
            raise ServingError(f"unknown replica {replica!r}", status=404) from None
        return {"replica": url, "draining": False, "in_service": state.in_service}
