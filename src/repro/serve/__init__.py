"""Serving subsystem: model registry, micro-batching inference, HTTP API.

Layers (each usable on its own):

* :class:`~repro.serve.registry.ModelRegistry` — a directory of persisted
  ``model.zip`` archives (:mod:`repro.api.persistence` format), keyed by
  file stem, lazily loaded and hot-reloaded when the file changes;
* :class:`~repro.serve.engine.InferenceEngine` — micro-batching queue that
  coalesces concurrent requests into single columnar ``predict_proba``
  calls, with a per-model LRU prediction cache, request cancellation
  (timed-out work is dropped before classification) and a bounded queue
  that sheds overload with 429s instead of collapsing;
* :class:`~repro.serve.pool.WorkerPool` — optional multi-process backend
  that shards each coalesced batch across N workers (``--workers N``);
* :func:`~repro.serve.http.create_server` /
  :class:`~repro.serve.http.ServingHTTPServer` — stdlib-only JSON-over-HTTP
  front-end (``repro serve`` on the CLI);
* :class:`~repro.serve.client.ServingClient` — the matching client.

Quickstart::

    from repro.serve import create_server, ServingClient
    import threading

    server = create_server("models/", port=8000)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServingClient(server.url)
    client.predict("iris", [[5.1, 3.5, 1.4, 0.2]]).labels

Served probabilities are bit-identical to offline
``load_model(path).predict_proba(rows)`` — coalescing and caching never
change results (see ``tests/property/test_serving_equivalence.py``).
"""

from repro.serve.client import (
    MetricsSnapshot,
    ModelInfo,
    PredictResult,
    RouterClient,
    ServingClient,
)
from repro.serve.engine import PREDICT_ENGINES, InferenceEngine
from repro.serve.http import ServingHTTPServer, create_server
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    ServingMetrics,
)
from repro.serve.pool import WorkerPool
from repro.serve.registry import ModelEntry, ModelRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InferenceEngine",
    "MetricRegistry",
    "MetricsSnapshot",
    "ModelEntry",
    "ModelInfo",
    "ModelRegistry",
    "PREDICT_ENGINES",
    "PredictResult",
    "RouterClient",
    "ServingClient",
    "ServingHTTPServer",
    "ServingMetrics",
    "WorkerPool",
    "create_server",
]
