"""Structured logging with trace correlation, on stdlib ``logging``.

The serving tier's operational events — replica health flips, failovers,
model reloads, engine shedding — were previously either silent or ad-hoc
``print``/stderr lines.  This module gives them one shape: an **event name**
plus flat key/value fields, rendered either as one JSON object per line
(``--log-format json``, machine-ingestable) or as a terse human-readable
line (``--log-format text``).  When a traced request is in flight on the
emitting thread, the formatter stamps the line with its ``trace_id`` (via
:func:`repro.obs.trace.current_trace_id`), so logs, ``/debug/traces`` and
``repro trace`` all join on the same id.

Libraries stay quiet by default: the ``repro`` logger gets a
``NullHandler`` at import and emits nothing until a process entry point
calls :func:`configure_logging` (the ``--log-level`` / ``--log-format``
flags on ``repro serve`` / ``router`` / ``loadgen``).  Records still
propagate to the root logger, so embedding applications — and pytest's
``caplog`` — can capture them with their own handlers.

Usage::

    from repro.obs.log import get_logger
    _log = get_logger(__name__)
    _log.warning("replica_down", replica=url, reason="connect", failures=3)
"""

from __future__ import annotations

import json
import logging
import sys
import time

from repro.obs.trace import current_trace_id

__all__ = [
    "EventLogger",
    "JsonLogFormatter",
    "LOG_FORMATS",
    "LOG_LEVELS",
    "TextLogFormatter",
    "configure_logging",
    "get_logger",
]

#: The namespace every repro logger hangs under.
ROOT_LOGGER = "repro"

LOG_LEVELS = ("debug", "info", "warning", "error")
LOG_FORMATS = ("json", "text")

#: Marker attribute on handlers installed by :func:`configure_logging`,
#: so reconfiguring replaces ours without touching anyone else's.
_HANDLER_MARK = "_repro_obs_handler"

# Quiet-by-default: a NullHandler keeps logging's "no handler" last-resort
# warning path off while leaving propagation to root (caplog etc.) intact.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def _timestamp(created: float) -> str:
    """ISO-8601 UTC with millisecond precision, e.g. 2026-08-08T14:03:07.123Z."""
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(created))
    return f"{base}.{int((created % 1.0) * 1000):03d}Z"


def _record_payload(record: logging.LogRecord) -> dict:
    payload = {
        "ts": _timestamp(record.created),
        "level": record.levelname.lower(),
        "logger": record.name,
        "event": record.getMessage(),
    }
    fields = getattr(record, "repro_fields", None)
    trace_id = None
    if fields:
        trace_id = fields.get("trace_id")
    if trace_id is None:
        trace_id = current_trace_id()
    if trace_id is not None:
        payload["trace_id"] = trace_id
    if fields:
        for key, value in fields.items():
            if key != "trace_id":
                payload[key] = value
    if record.exc_info and record.exc_info[1] is not None:
        exc = record.exc_info[1]
        payload["exception"] = f"{type(exc).__name__}: {exc}"
    return payload


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line; non-serialisable values degrade to str()."""

    def format(self, record: logging.LogRecord) -> str:
        return json.dumps(_record_payload(record), default=str)


class TextLogFormatter(logging.Formatter):
    """Human-readable: ``ts LEVEL event key=value ...`` (same fields)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = _record_payload(record)
        head = (
            f"{payload.pop('ts')} {payload.pop('level').upper():7s} "
            f"{payload.pop('event')}"
        )
        payload.pop("logger", None)
        tail = " ".join(f"{key}={value}" for key, value in payload.items())
        return f"{head} {tail}".rstrip()


def configure_logging(
    level: str = "info", fmt: str = "json", stream=None
) -> logging.Logger:
    """Install the structured handler on the ``repro`` logger.

    Called from process entry points (the CLI); safe to call repeatedly —
    a previous handler installed here is replaced, handlers installed by
    anyone else are left alone.  Returns the configured logger.
    """
    level_name = str(level).lower()
    if level_name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {', '.join(LOG_LEVELS)}"
        )
    fmt_name = str(fmt).lower()
    if fmt_name not in LOG_FORMATS:
        raise ValueError(
            f"unknown log format {fmt!r}; expected one of {', '.join(LOG_FORMATS)}"
        )
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonLogFormatter() if fmt_name == "json" else TextLogFormatter()
    )
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level_name.upper()))
    # Once a process opts in, its own handler is the sink of record — double
    # emission through a root handler would corrupt line-oriented ingestion.
    logger.propagate = False
    return logger


class EventLogger:
    """Thin wrapper binding event names + fields to a stdlib logger."""

    __slots__ = ("stdlib",)

    def __init__(self, logger: logging.Logger) -> None:
        self.stdlib = logger

    def _log(self, level: int, event: str, fields: dict) -> None:
        if self.stdlib.isEnabledFor(level):
            self.stdlib.log(level, event, extra={"repro_fields": fields})

    def debug(self, event: str, **fields) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> EventLogger:
    """An :class:`EventLogger` under the ``repro`` namespace.

    Pass ``__name__``; modules outside the package are nested under
    ``repro.`` so one :func:`configure_logging` call governs them all.
    """
    qualified = name if name == ROOT_LOGGER or name.startswith(
        f"{ROOT_LOGGER}."
    ) else f"{ROOT_LOGGER}.{name}"
    return EventLogger(logging.getLogger(qualified))
