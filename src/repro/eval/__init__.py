"""Evaluation harness: cross validation, metrics, experiments and reporting."""

from repro.eval.crossval import (
    cross_val_score,
    cross_validate,
    iter_fold_splits,
    stratified_folds,
    train_test_split,
)
from repro.eval.experiment import (
    AccuracyExperiment,
    AccuracyResult,
    EfficiencyExperiment,
    EfficiencyResult,
    NoiseModelExperiment,
    NoiseModelResult,
    SensitivityExperiment,
    SensitivityResult,
)
from repro.eval.metrics import accuracy, confusion_matrix, error_rate, per_class_accuracy
from repro.eval.reporting import (
    format_accuracy_results,
    format_efficiency_results,
    format_noise_model_results,
    format_sensitivity_results,
    format_table,
)

__all__ = [
    "AccuracyExperiment",
    "AccuracyResult",
    "EfficiencyExperiment",
    "EfficiencyResult",
    "NoiseModelExperiment",
    "NoiseModelResult",
    "SensitivityExperiment",
    "SensitivityResult",
    "accuracy",
    "confusion_matrix",
    "cross_val_score",
    "cross_validate",
    "error_rate",
    "format_accuracy_results",
    "format_efficiency_results",
    "format_noise_model_results",
    "format_sensitivity_results",
    "format_table",
    "iter_fold_splits",
    "per_class_accuracy",
    "stratified_folds",
    "train_test_split",
]
