"""Incremental updates of a trained decision tree (``partial_fit``).

The paper's leaf statistics are weighted class-mass sums, which makes a
trained tree naturally incrementable: a new uncertain tuple is routed down
the tree with exactly the *training* partition semantics of
:class:`~repro.core.builder.TreeBuilder` (fractional tuples with truncated,
renormalised pdfs at numerical tests, per-category fractions at categorical
tests), and every leaf it reaches adds the arriving mass to its class
distribution in place.

Each leaf additionally buffers the fractional tuples that reached it since
the leaf was created (its *accumulated tuples*).  When the buffered mass
crosses ``resplit_min_weight`` and the best split of the buffer would gain
at least ``resplit_gain`` dispersion, the leaf is *locally re-split*: a
fresh subtree is built from the buffer with the same
:class:`~repro.core.builder.TreeBuilder` configuration (depth budget reduced
by the leaf's depth) and swapped into the parent — bit-identical, by
construction, to building that subtree from scratch on the accumulated
tuples.  The rest of the tree is untouched, so an update costs a routing
pass plus at most a few leaf-sized rebuilds instead of a full retrain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.core.builder import _EPS, TreeBuilder
from repro.core.categorical import CategoricalDistribution
from repro.core.dataset import UncertainDataset, UncertainTuple
from repro.core.pdf import Pdf
from repro.core.tree import DecisionTree, InternalNode, LeafNode, TreeNode
from repro.exceptions import TreeError

__all__ = ["TreeUpdater", "UpdateReport"]


@dataclass
class UpdateReport:
    """What one :meth:`TreeUpdater.update` batch did to the tree."""

    #: Number of input tuples routed.
    n_tuples: int = 0
    #: Total fractional weight absorbed by leaves.
    routed_weight: float = 0.0
    #: Probability mass dropped at categorical tests with no matching branch.
    dropped_weight: float = 0.0
    #: Number of distinct leaves that received mass.
    touched_leaves: int = 0
    #: Number of leaves replaced by freshly built subtrees.
    n_resplits: int = 0

    def merge(self, other: "UpdateReport") -> "UpdateReport":
        """Accumulate another report into this one (e.g. across forest members)."""
        self.n_tuples += other.n_tuples
        self.routed_weight += other.routed_weight
        self.dropped_weight += other.dropped_weight
        self.touched_leaves += other.touched_leaves
        self.n_resplits += other.n_resplits
        return self


@dataclass
class _LeafState:
    """Accumulated streaming state of one live leaf.

    Holds a strong reference to the leaf (so ``id(leaf)`` keys stay unique
    for as long as the state lives) plus the leaf's position in the tree —
    needed to swap a re-split subtree into place — and the buffered
    fractional tuples routed here since the leaf was created.
    """

    leaf: LeafNode
    parent: InternalNode | None
    slot: Hashable
    depth: int
    buffer: list[UncertainTuple] = field(default_factory=list)
    buffer_weight: float = 0.0


class TreeUpdater:
    """Routes new uncertain tuples into a trained tree and re-splits leaves.

    Parameters
    ----------
    tree:
        The fitted :class:`~repro.core.tree.DecisionTree` to update.
    builder:
        The :class:`~repro.core.builder.TreeBuilder` configuration used for
        local re-splits (and the trigger's gain computation).  Pass the
        builder the tree was built with so re-split subtrees follow the same
        stopping/pruning rules; defaults to a builder with default
        parameters.
    resplit_gain:
        Minimum dispersion gain the best split of a leaf's accumulated
        tuples must achieve before the leaf is re-split.
    resplit_min_weight:
        Minimum accumulated fractional weight a leaf must buffer before the
        re-split trigger is evaluated at all.
    """

    def __init__(
        self,
        tree: DecisionTree,
        builder: TreeBuilder | None = None,
        *,
        resplit_gain: float = 0.01,
        resplit_min_weight: float = 8.0,
    ) -> None:
        if resplit_gain <= 0.0:
            raise TreeError(f"resplit_gain must be positive, got {resplit_gain!r}")
        if resplit_min_weight <= 0.0:
            raise TreeError(
                f"resplit_min_weight must be positive, got {resplit_min_weight!r}"
            )
        self.tree = tree
        self.builder = builder if builder is not None else TreeBuilder()
        self.resplit_gain = float(resplit_gain)
        self.resplit_min_weight = float(resplit_min_weight)
        self._label_index = {label: i for i, label in enumerate(tree.class_labels)}
        self._states: dict[int, _LeafState] = {}
        self._touched: set[int] = set()

    # -- public API ------------------------------------------------------------

    def update(
        self, data: UncertainDataset | Sequence[UncertainTuple] | Iterable[UncertainTuple]
    ) -> UpdateReport:
        """Route a batch of labelled tuples into the tree, re-splitting as needed.

        Every tuple must carry a label drawn from the tree's
        ``class_labels`` and the tree's feature schema.  Leaf distributions
        are updated in place; leaves whose accumulated buffer crosses the
        re-split trigger are replaced by freshly built subtrees before the
        call returns.
        """
        if isinstance(data, UncertainDataset):
            if data.n_attributes != len(self.tree.attributes):
                raise TreeError(
                    f"dataset has {data.n_attributes} attributes, "
                    f"tree expects {len(self.tree.attributes)}"
                )
            items: Sequence[UncertainTuple] = data.tuples
        else:
            items = list(data)
        report = UpdateReport(n_tuples=len(items))
        self._touched.clear()
        for item in items:
            if item.label is None:
                raise TreeError("partial_fit tuples must carry class labels")
            if item.label not in self._label_index:
                raise TreeError(
                    f"unknown class label {item.label!r}; streamed tuples must use "
                    "labels seen at fit time"
                )
            if len(item.features) != len(self.tree.attributes):
                raise TreeError(
                    f"tuple has {len(item.features)} features, "
                    f"tree expects {len(self.tree.attributes)}"
                )
            self._route(self.tree.root, item, None, None, 0, report)
        report.touched_leaves = len(self._touched)
        for leaf_id in sorted(self._touched):
            state = self._states.get(leaf_id)
            if state is not None and self._maybe_resplit(state):
                report.n_resplits += 1
        return report

    def accumulated_tuples(self, leaf: LeafNode) -> list[UncertainTuple]:
        """The fractional tuples buffered at ``leaf`` since it was created.

        This is exactly the dataset a triggered re-split builds the
        replacement subtree from; the bit-identity property test rebuilds
        from it independently and compares structure signatures.
        """
        state = self._states.get(id(leaf))
        return list(state.buffer) if state is not None else []

    def leaf_depth(self, leaf: LeafNode) -> int | None:
        """Depth at which ``leaf`` currently sits (``None`` if never routed to)."""
        state = self._states.get(id(leaf))
        return state.depth if state is not None else None

    def subtree_builder(self, depth: int) -> TreeBuilder:
        """The builder a re-split at ``depth`` uses for its fresh subtree.

        Identical to the updater's builder except that ``max_depth`` (when
        set) is reduced by the leaf's depth, so the re-grown subtree respects
        the whole-tree depth budget.
        """
        remaining = self.builder.max_depth
        if remaining is not None:
            remaining = max(0, remaining - depth)
        return TreeBuilder(
            strategy=self.builder.strategy,
            measure=self.builder.measure,
            max_depth=remaining,
            min_split_weight=self.builder.min_split_weight,
            min_dispersion_gain=self.builder.min_dispersion_gain,
            post_prune=self.builder.post_prune,
            post_prune_confidence=self.builder.post_prune_confidence,
            engine=self.builder.engine,
            n_jobs=1,
        )

    # -- routing ---------------------------------------------------------------

    def _route(
        self,
        node: TreeNode,
        item: UncertainTuple,
        parent: InternalNode | None,
        slot: Hashable,
        depth: int,
        report: UpdateReport,
    ) -> None:
        if isinstance(node, LeafNode):
            self._absorb(node, item, parent, slot, depth, report)
            return
        assert isinstance(node, InternalNode)
        value = item.features[node.attribute_index]
        if node.is_numerical_test:
            if not isinstance(value, Pdf):
                raise TreeError(
                    f"attribute {node.attribute_index} is tested numerically but the "
                    "tuple provides a categorical value"
                )
            split_point = node.split_point
            assert split_point is not None
            assert node.left is not None and node.right is not None
            # Training partition semantics (TreeBuilder._split_numerical):
            # the fractional tuple's weight is scaled by the branch
            # probability and dust below _EPS is dropped on both sides.
            p_left, left_pdf, right_pdf = value.split_at(split_point)
            if left_pdf is not None and p_left * item.weight > _EPS:
                self._route(
                    node.left,
                    item.with_feature(node.attribute_index, left_pdf, item.weight * p_left),
                    node, "left", depth + 1, report,
                )
            if right_pdf is not None and (1.0 - p_left) * item.weight > _EPS:
                self._route(
                    node.right,
                    item.with_feature(
                        node.attribute_index, right_pdf, item.weight * (1.0 - p_left)
                    ),
                    node, "right", depth + 1, report,
                )
            return
        if not isinstance(value, CategoricalDistribution):
            raise TreeError(
                f"attribute {node.attribute_index} is tested categorically but the "
                "tuple provides a numerical value"
            )
        for category, probability in value.items():
            weight = item.weight * probability
            if weight <= _EPS:
                continue
            child = node.branches.get(category)
            if child is None:
                # A category never seen when this node was built has no
                # branch to train; its mass is dropped (and reported), just
                # as a fresh build would have created a branch we cannot
                # retrofit without re-splitting the whole node.
                report.dropped_weight += weight
                continue
            self._route(
                child,
                item.with_feature(
                    node.attribute_index, CategoricalDistribution.certain(category), weight
                ),
                node, category, depth + 1, report,
            )

    def _absorb(
        self,
        leaf: LeafNode,
        item: UncertainTuple,
        parent: InternalNode | None,
        slot: Hashable,
        depth: int,
        report: UpdateReport,
    ) -> None:
        state = self._states.get(id(leaf))
        if state is None:
            state = _LeafState(leaf, parent, slot, depth)
            self._states[id(leaf)] = state
        state.buffer.append(item)
        state.buffer_weight += item.weight
        # Leaf class-mass statistics, updated in place.  The arithmetic
        # allocates fresh arrays and assigns them: a loaded model's leaf may
        # hold a read-only row view into the shared mmap matrix, which must
        # never be mutated.
        mass = leaf.distribution * max(0.0, leaf.training_weight)
        mass[self._label_index[item.label]] += item.weight
        total = float(mass.sum())
        leaf.distribution = mass / total
        leaf.training_weight = total
        report.routed_weight += item.weight
        self._touched.add(id(leaf))

    # -- local re-splits -------------------------------------------------------

    def _maybe_resplit(self, state: _LeafState) -> bool:
        if state.buffer_weight < self.resplit_min_weight:
            return False
        builder = self.subtree_builder(state.depth)
        local = UncertainDataset(
            self.tree.attributes, state.buffer, class_labels=self.tree.class_labels
        )
        if builder.root_split_gain(local) < self.resplit_gain:
            return False
        new_root = builder.build(local).tree.root
        self._swap(state, new_root)
        # The replaced leaf's state is retired; leaves of the new subtree
        # register lazily as future tuples reach them (their buffers start
        # empty — the buffered tuples are now the subtree's training set).
        del self._states[id(state.leaf)]
        return True

    def _swap(self, state: _LeafState, new_root: TreeNode) -> None:
        parent = state.parent
        if parent is None:
            self.tree.root = new_root
        elif parent.is_numerical_test:
            if state.slot == "left":
                parent.left = new_root
            else:
                parent.right = new_root
        else:
            parent.branches[state.slot] = new_root
