"""k-fold cross validation over uncertain datasets.

The paper uses 10-fold cross validation for the UCI datasets that do not
ship with a train/test division (Section 4.3).  Folds are stratified by
class label so every fold roughly preserves the class proportions, which
keeps fold-to-fold variance low on small datasets like Iris and Glass.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, Hashable, Iterator, Sequence

import numpy as np

from repro.core.dataset import UncertainDataset
from repro.exceptions import ExperimentError

__all__ = ["stratified_folds", "cross_validate", "cross_val_score", "train_test_split"]


def stratified_folds(
    dataset: UncertainDataset,
    n_folds: int,
    rng: np.random.Generator | None = None,
) -> list[list[int]]:
    """Partition tuple indices into class-stratified folds.

    Returns ``n_folds`` disjoint index lists covering the whole dataset.
    """
    if n_folds < 2:
        raise ExperimentError(f"n_folds must be at least 2, got {n_folds!r}")
    if n_folds > len(dataset):
        raise ExperimentError(
            f"cannot make {n_folds} folds from only {len(dataset)} tuples"
        )
    rng = rng or np.random.default_rng()
    by_class: dict[Hashable, list[int]] = {}
    for index, item in enumerate(dataset):
        by_class.setdefault(item.label, []).append(index)
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    # Deal indices of each class round-robin into the folds, starting at a
    # random offset so small classes do not always land in the first fold.
    for indices in by_class.values():
        shuffled = [indices[i] for i in rng.permutation(len(indices))]
        offset = int(rng.integers(0, n_folds))
        for position, index in enumerate(shuffled):
            folds[(offset + position) % n_folds].append(index)
    return [sorted(fold) for fold in folds]


def iter_fold_splits(
    dataset: UncertainDataset,
    n_folds: int,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[UncertainDataset, UncertainDataset]]:
    """Yield ``(training, test)`` dataset pairs, one per fold."""
    folds = stratified_folds(dataset, n_folds, rng)
    for fold_index, test_indices in enumerate(folds):
        if not test_indices:
            continue
        train_indices = [
            index
            for other_index, fold in enumerate(folds)
            if other_index != fold_index
            for index in fold
        ]
        yield dataset.subset(train_indices), dataset.subset(test_indices)


def cross_validate(
    dataset: UncertainDataset,
    evaluate: Callable[[UncertainDataset, UncertainDataset], float],
    *,
    n_folds: int = 10,
    rng: np.random.Generator | None = None,
    n_jobs: int = 1,
) -> list[float]:
    """Run ``evaluate(training, test)`` on every fold and collect the scores.

    With ``n_jobs > 1`` the folds are evaluated in parallel worker
    *processes* (fold-level parallelism; training one fold's tree never
    depends on another fold).  ``evaluate`` must then be picklable — a
    module-level function or :func:`functools.partial` of one, not a
    closure or lambda.  Fold assignment is drawn from ``rng`` up front, so
    the scores are identical to a sequential run (up to list order, which
    follows the fold order in both cases).
    """
    if n_jobs < 1:
        raise ExperimentError(f"n_jobs must be at least 1, got {n_jobs!r}")
    pairs = list(iter_fold_splits(dataset, n_folds, rng))
    if not pairs:
        raise ExperimentError("cross validation produced no folds")
    if n_jobs == 1 or len(pairs) == 1:
        return [evaluate(training, test) for training, test in pairs]
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(pairs))) as executor:
        return list(
            executor.map(evaluate, [p[0] for p in pairs], [p[1] for p in pairs])
        )


def _estimator_fold_score(
    training: UncertainDataset,
    test: UncertainDataset,
    *,
    estimator_class: type,
    params: dict,
) -> float:
    """Fit a fresh estimator on one fold and score it (picklable worker).

    ``clone_estimator`` deep-copies parameter objects that carry their own
    ``get_params`` (uncertainty specs), so folds never share mutable state
    with each other or with the caller's estimator — even with ``n_jobs=1``.
    """
    from repro.core.estimator import clone_estimator

    model = clone_estimator(estimator_class(**params))
    return model.fit(training).score(test)


def cross_val_score(
    estimator,
    X,
    y: Sequence[Hashable] | None = None,
    *,
    spec=None,
    n_folds: int = 10,
    rng: np.random.Generator | None = None,
    n_jobs: int = 1,
) -> list[float]:
    """Cross-validated accuracy of an estimator, array-first.

    ``estimator`` is any object following the estimator protocol of
    :class:`~repro.core.estimator.BaseTreeEstimator` (``get_params`` plus
    ``fit``/``score``); a fresh, unfitted copy is built per fold, so the
    passed instance is never mutated.  ``X`` is either an
    :class:`UncertainDataset` (``y`` omitted) or a 2-D array with labels
    ``y``, converted once through ``spec`` (default: the estimator's own
    ``spec``) before the stratified folds are drawn.

    With ``n_jobs > 1`` folds run in parallel worker processes; results are
    identical to a sequential run.
    """
    if not hasattr(estimator, "get_params") or not hasattr(estimator, "fit"):
        raise ExperimentError(
            "cross_val_score needs an estimator with get_params/fit/score; "
            f"got {type(estimator).__name__}"
        )
    if isinstance(X, UncertainDataset):
        if y is not None:
            raise ExperimentError("pass labels inside the UncertainDataset, not as y")
        dataset = X
    else:
        from repro.api.spec import build_dataset

        if y is None:
            raise ExperimentError("cross_val_score on arrays requires labels y")
        dataset = build_dataset(
            X, y, spec=spec if spec is not None else getattr(estimator, "spec", None)
        )
    worker = partial(
        _estimator_fold_score,
        estimator_class=type(estimator),
        params=estimator.get_params(deep=False),
    )
    return cross_validate(dataset, worker, n_folds=n_folds, rng=rng, n_jobs=n_jobs)


def train_test_split(
    dataset: UncertainDataset,
    test_fraction: float = 0.3,
    rng: np.random.Generator | None = None,
) -> tuple[UncertainDataset, UncertainDataset]:
    """Stratified single train/test split."""
    if not 0.0 < test_fraction < 1.0:
        raise ExperimentError(f"test_fraction must be in (0, 1), got {test_fraction!r}")
    n_folds = max(int(round(1.0 / test_fraction)), 2)
    training, test = next(iter_fold_splits(dataset, n_folds, rng))
    return training, test
