"""End-to-end serving smoke test: the real CLI process over real sockets.

This is the test CI's serving-smoke job runs: train a tiny model, launch
``python -m repro serve`` as a subprocess on an ephemeral port, POST rows
with :class:`~repro.serve.client.ServingClient`, and assert the served
predictions equal the offline ``load_model`` output bit for bit.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import UDTClassifier, load_model
from repro.api.spec import gaussian
from repro.serve import ServingClient

pytestmark = pytest.mark.integration


@pytest.fixture
def model_dir(tmp_path):
    rng = np.random.default_rng(41)
    X = rng.normal(size=(60, 3))
    y = np.where(X[:, 0] - X[:, 1] > 0, "left", "right")
    model = UDTClassifier(spec=gaussian(w=0.1, s=8), min_split_weight=4.0).fit(X, y)
    models = tmp_path / "models"
    models.mkdir()
    model.save(models / "smoke.zip")
    return models


@pytest.fixture
def served_url(model_dir):
    """URL of a live ``python -m repro serve`` subprocess (ephemeral port)."""
    env = dict(os.environ)
    # Make sure the subprocess resolves the same `repro` this test imported,
    # whether the package is installed or running from a source checkout.
    env["PYTHONPATH"] = os.pathsep.join(
        entry for entry in (_src_dir(), env.get("PYTHONPATH")) if entry
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--models", str(model_dir),
         "--port", "0", "--max-batch", "16", "--max-wait-ms", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        url = _read_url(process)
        _wait_healthy(url)
        yield url
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10.0)


def _src_dir() -> str:
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


def _read_url(process) -> str:
    """Parse the bound URL from the server's startup banner."""
    deadline = time.monotonic() + 30.0
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise AssertionError("serve process exited before printing its URL")
        if "http://" in line:
            return line.strip().split()[-1]
    raise AssertionError("serve process never printed its URL")


def _wait_healthy(url: str) -> None:
    client = ServingClient(url, timeout=5.0)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except Exception:
            time.sleep(0.05)
    raise AssertionError(f"server at {url} never became healthy")


def test_served_predictions_match_offline(served_url, model_dir):
    offline = load_model(model_dir / "smoke.zip")
    rows = np.random.default_rng(43).normal(size=(20, 3))
    client = ServingClient(served_url)

    listed = client.models()
    assert [entry["name"] for entry in listed] == ["smoke"]
    assert listed[0]["n_features"] == 3

    result = client.predict("smoke", rows)
    assert np.array_equal(result.probabilities, offline.predict_proba(rows))
    assert result.labels == list(offline.predict(rows))

    metrics = client.metrics()
    assert metrics["predict_requests"] >= 1
    assert metrics["rows_total"] >= len(rows)
