"""Tests for the sharded multi-process :class:`repro.serve.pool.WorkerPool`.

The contract under test: sharding a coalesced batch across worker processes
(each rebuilding the model from its archive) returns bit-identical
probabilities to one in-process ``predict_proba`` call — through the bare
pool, through an engine configured with one, and over the full HTTP stack.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serve import (
    InferenceEngine,
    ModelRegistry,
    ServingClient,
    WorkerPool,
    create_server,
)


class TestValidation:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ServingError):
            WorkerPool(0)
        with pytest.raises(ServingError):
            WorkerPool(2, min_shard_rows=0)

    def test_create_server_rejects_bad_worker_count(self, model_dir):
        with pytest.raises(ServingError):
            create_server(model_dir, workers=0)

    def test_closed_pool_refuses_work(self, model_dir):
        pool = WorkerPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ServingError) as excinfo:
            pool.predict_proba(model_dir / "demo.zip", np.zeros((2, 3)))
        assert excinfo.value.status == 503


class TestSharding:
    def test_shard_count_respects_min_shard_rows(self):
        pool = WorkerPool(4, min_shard_rows=8)
        try:
            assert pool._n_shards(1) == 1
            assert pool._n_shards(8) == 1
            assert pool._n_shards(16) == 2
            assert pool._n_shards(64) == 4
            assert pool._n_shards(10_000) == 4
        finally:
            pool.close()

    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_pool_matches_offline_bit_for_bit(
        self, model_dir, offline_model, serving_rows, n_workers
    ):
        expected = offline_model.predict_proba(serving_rows)
        with WorkerPool(n_workers, min_shard_rows=4) as pool:
            result = pool.predict_proba(model_dir / "demo.zip", serving_rows)
        assert np.array_equal(result, expected)

    def test_single_row_batch(self, model_dir, offline_model, serving_rows):
        with WorkerPool(2) as pool:
            result = pool.predict_proba(model_dir / "demo.zip", serving_rows[:1])
        assert np.array_equal(result, offline_model.predict_proba(serving_rows[:1]))

    def test_tuples_engine_through_the_pool(
        self, model_dir, offline_model, serving_rows
    ):
        with WorkerPool(2, predict_engine="tuples", min_shard_rows=4) as pool:
            result = pool.predict_proba(model_dir / "demo.zip", serving_rows)
        np.testing.assert_allclose(
            result, offline_model.predict_proba(serving_rows), atol=1e-12
        )


class TestSnapshotPinning:
    def test_wrong_token_is_refused(self, model_dir, serving_rows):
        with WorkerPool(1) as pool:
            result = pool.predict_proba(
                model_dir / "demo.zip", serving_rows[:2], expected_token=(0, 0)
            )
        assert result is None

    def test_matching_token_is_served(self, model_dir, offline_model, serving_rows):
        stat = (model_dir / "demo.zip").stat()
        token = (stat.st_mtime_ns, stat.st_size)
        with WorkerPool(1) as pool:
            result = pool.predict_proba(
                model_dir / "demo.zip", serving_rows[:2], expected_token=token
            )
        assert np.array_equal(result, offline_model.predict_proba(serving_rows[:2]))

    def test_missing_file_is_refused_not_raised(self, model_dir, serving_rows):
        with WorkerPool(1) as pool:
            result = pool.predict_proba(model_dir / "gone.zip", serving_rows[:2])
        assert result is None

    def test_registry_snapshot_token(self, model_dir, serving_model):
        registry = ModelRegistry(model_dir)
        model = registry.get("demo")
        snapshot = registry.snapshot_token("demo", model)
        assert snapshot is not None
        path, token = snapshot
        assert path == model_dir / "demo.zip"
        stat = path.stat()
        assert token == (stat.st_mtime_ns, stat.st_size)
        # A stale model object (not the current load) gets no token.
        assert registry.snapshot_token("demo", object()) is None
        assert registry.snapshot_token("missing", model) is None

    def test_hot_reload_during_flight_falls_back_to_the_snapshot(
        self, model_dir, serving_model, serving_rows
    ):
        # A batch validated against snapshot M1 whose archive changes before
        # the pool invocation must be served in-process with M1's exact
        # bits, never with whatever now sits on disk.
        import os

        registry = ModelRegistry(model_dir)
        engine = InferenceEngine(
            registry, max_batch=16, cache_size=0, pool=WorkerPool(1, min_shard_rows=4)
        )
        try:
            model = registry.get("demo")
            expected = model.predict_proba(serving_rows)
            path = model_dir / "demo.zip"
            stat = path.stat()
            os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10_000_000))
            # The snapshot token no longer matches the file: _invoke must
            # refuse the pool and classify with the snapshot object.
            result = engine._invoke("demo", model, np.asarray(serving_rows, dtype=float))
        finally:
            engine.close()
        assert np.array_equal(result, expected)


class TestEngineIntegration:
    def test_engine_with_pool_matches_in_process_engine(
        self, model_dir, serving_rows
    ):
        registry = ModelRegistry(model_dir)
        with InferenceEngine(registry, max_batch=64, cache_size=0) as engine:
            expected = engine.predict_proba("demo", serving_rows)
        with InferenceEngine(
            registry,
            max_batch=64,
            cache_size=0,
            pool=WorkerPool(2, min_shard_rows=4),
        ) as engine:
            result = engine.predict_proba("demo", serving_rows)
        assert np.array_equal(result, expected)

    def test_concurrent_coalesced_requests_through_pool(
        self, model_dir, offline_model, serving_rows
    ):
        expected = offline_model.predict_proba(serving_rows)
        registry = ModelRegistry(model_dir)
        with InferenceEngine(
            registry,
            max_batch=64,
            max_wait_ms=10.0,
            cache_size=0,
            pool=WorkerPool(2, min_shard_rows=4),
        ) as engine:
            with ThreadPoolExecutor(max_workers=8) as executor:
                results = list(
                    executor.map(
                        lambda i: engine.predict_proba("demo", serving_rows[i]),
                        range(len(serving_rows)),
                    )
                )
        assert np.array_equal(np.vstack(results), expected)

    def test_broken_pool_degrades_to_in_process_serving(
        self, model_dir, offline_model, serving_rows
    ):
        # A pool whose workers died (OOM kill, executor shutdown) must not
        # turn every request into an error: the engine falls back to
        # classifying in-process with the snapshot it already holds.
        registry = ModelRegistry(model_dir)
        pool = WorkerPool(1, min_shard_rows=4)
        with InferenceEngine(
            registry, max_batch=64, cache_size=0, pool=pool
        ) as engine:
            pool._executor.shutdown(wait=True)  # simulate a dead pool
            result = engine.predict_proba("demo", serving_rows)
        assert np.array_equal(result, offline_model.predict_proba(serving_rows))

    def test_engine_close_closes_the_pool(self, model_dir):
        registry = ModelRegistry(model_dir)
        pool = WorkerPool(1)
        engine = InferenceEngine(registry, cache_size=0, pool=pool)
        engine.close()
        with pytest.raises(ServingError):
            pool.predict_proba(model_dir / "demo.zip", np.zeros((1, 3)))


class TestHTTP:
    def test_workers_flag_over_http_matches_offline(
        self, model_dir, offline_model, serving_rows
    ):
        expected = offline_model.predict_proba(serving_rows)
        server = create_server(
            model_dir, port=0, max_batch=16, max_wait_ms=1.0, cache_size=0, workers=2
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServingClient(server.url)
            result = client.predict("demo", serving_rows)
        finally:
            server.close()
            thread.join(timeout=5.0)
        assert np.array_equal(result.probabilities, expected)
        assert result.labels == list(offline_model.predict(serving_rows))
