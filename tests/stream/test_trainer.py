"""ContinuousTrainer: the feed → partial_fit/refresh → publish loop."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import load_model
from repro.api.persistence import read_model_metadata
from repro.exceptions import TreeError
from repro.serve.registry import ModelRegistry
from repro.stream import ContinuousTrainer, FeedTailer


def write_rows(path, X, y, mode="a"):
    with open(path, mode) as handle:
        for row, label in zip(X, y):
            handle.write(",".join(str(value) for value in row) + f",{label}\n")


@pytest.fixture
def dirs(tmp_path):
    feed = tmp_path / "feed"
    feed.mkdir()
    publish = tmp_path / "models"
    return feed, publish


class TestValidation:
    def test_model_without_partial_fit_rejected(self, dirs):
        feed, publish = dirs
        with pytest.raises(TreeError, match="partial_fit"):
            ContinuousTrainer(object(), feed, publish, "demo")

    def test_bad_knobs_rejected(self, fitted_tree, dirs):
        feed, publish = dirs
        with pytest.raises(TreeError, match="min_batch"):
            ContinuousTrainer(fitted_tree, feed, publish, "demo", min_batch=0)
        with pytest.raises(TreeError, match="interval_s"):
            ContinuousTrainer(fitted_tree, feed, publish, "demo", interval_s=-1.0)


class TestCycles:
    def test_empty_feed_cycle_does_nothing(self, fitted_tree, dirs):
        feed, publish = dirs
        trainer = ContinuousTrainer(fitted_tree, feed, publish, "demo")
        result = trainer.run_once()
        assert not result.updated and not result.published
        assert result.rows == 0
        assert trainer.updates_applied == 0

    def test_rows_trigger_update_and_publish(self, fitted_tree, dirs, stream_data):
        feed, publish = dirs
        X, y = stream_data
        write_rows(feed / "rows.csv", X, y)
        trainer = ContinuousTrainer(fitted_tree, feed, publish, "demo")
        result = trainer.run_once()
        assert result.updated and result.published
        assert result.rows == len(X)
        assert result.generation == 1
        archive = publish / "demo.zip"
        assert archive.exists()
        # No temporary snapshot file left behind, and nothing else matching
        # the registry's *.zip discovery glob.
        assert sorted(p.name for p in publish.iterdir()) == ["demo.zip"]
        assert read_model_metadata(archive)["update_generation"] == 1

    def test_min_batch_carries_rows_over(self, fitted_tree, dirs, stream_data):
        feed, publish = dirs
        X, y = stream_data
        trainer = ContinuousTrainer(fitted_tree, feed, publish, "demo", min_batch=10)
        write_rows(feed / "rows.csv", X[:4], y[:4])
        first = trainer.run_once()
        assert not first.updated
        assert trainer.describe()["pending_rows"] == 4
        write_rows(feed / "rows.csv", X[4:12], y[4:12])
        second = trainer.run_once()
        assert second.updated
        assert trainer.describe()["pending_rows"] == 0
        # All 12 rows landed in the one applied update.
        assert trainer.rows_ingested == 12

    def test_forest_refresh_every_n_updates(self, fitted_forest, dirs, stream_data):
        feed, publish = dirs
        X, y = stream_data
        trainer = ContinuousTrainer(
            fitted_forest, feed, publish, "forest",
            refresh_every=2, refresh_fraction=0.4, reservoir_size=64,
        )
        write_rows(feed / "rows.csv", X[:10], y[:10])
        assert trainer.run_once().refreshed == []
        write_rows(feed / "rows.csv", X[10:20], y[10:20])
        second = trainer.run_once()
        assert len(second.refreshed) == 2  # ceil(0.4 * 5) worst members
        # partial_fit + refresh both bump the generation.
        assert second.generation == 3

    def test_published_snapshot_loads_and_predicts(
        self, fitted_tree, dirs, stream_data
    ):
        feed, publish = dirs
        X, y = stream_data
        write_rows(feed / "rows.csv", X, y)
        trainer = ContinuousTrainer(fitted_tree, feed, publish, "demo")
        trainer.run_once()
        clone = load_model(publish / "demo.zip")
        assert clone.update_generation_ == 1
        rows = np.asarray(X[:5], dtype=float)
        assert list(clone.predict(rows)) == list(fitted_tree.predict(rows))


class TestRunLoop:
    def test_run_publishes_initial_snapshot(self, fitted_tree, dirs):
        feed, publish = dirs
        trainer = ContinuousTrainer(fitted_tree, feed, publish, "demo", interval_s=0.0)
        executed = trainer.run(iterations=2)
        assert executed == 2
        # The starting snapshot landed even though the feed stayed empty.
        assert (publish / "demo.zip").exists()
        assert trainer.publications == 1

    def test_run_honours_stop_event(self, fitted_tree, dirs):
        feed, publish = dirs
        trainer = ContinuousTrainer(fitted_tree, feed, publish, "demo", interval_s=0.0)
        stop = threading.Event()
        stop.set()
        assert trainer.run(iterations=5, stop_event=stop) == 0

    def test_on_cycle_callback_sees_every_result(self, fitted_tree, dirs):
        feed, publish = dirs
        trainer = ContinuousTrainer(fitted_tree, feed, publish, "demo", interval_s=0.0)
        seen = []
        trainer.run(iterations=3, on_cycle=seen.append)
        assert [result.cycle for result in seen] == [1, 2, 3]


class TestServingHandoff:
    def test_registry_hot_reloads_published_snapshot(
        self, fitted_tree, dirs, stream_data
    ):
        """The end-to-end contract: a publication must flip the serving
        registry's staleness check so the next request serves the update.
        """
        feed, publish = dirs
        X, y = stream_data
        trainer = ContinuousTrainer(fitted_tree, feed, publish, "demo")
        trainer.publish()
        registry = ModelRegistry(publish)
        assert registry.get("demo").update_generation_ == 0

        write_rows(feed / "rows.csv", X, y)
        trainer.run_once()
        # Same registry, no restart: the atomic replace changed the stat
        # pair, so get() remaps and serves generation 1.
        assert registry.get("demo").update_generation_ == 1
        described = {entry["name"]: entry for entry in registry.describe()}
        assert described["demo"]["update_generation"] == 1
        assert described["demo"]["trained_at"] is not None

    def test_trainer_cycle_spans_exported(self, fitted_tree, dirs, stream_data, tmp_path):
        from repro.obs import Tracer

        feed, publish = dirs
        X, y = stream_data
        write_rows(feed / "rows.csv", X, y)
        tracer = Tracer("trainer-test", buffer_size=256)
        trainer = ContinuousTrainer(fitted_tree, feed, publish, "demo", tracer=tracer)
        trainer.run_once()
        names = {
            span["name"]
            for trace in tracer.buffer.traces()
            for span in trace["spans"]
        }
        assert {"trainer.cycle", "trainer.ingest",
                "trainer.partial_fit", "trainer.publish"} <= names
