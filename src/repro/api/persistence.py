"""Versioned model persistence: JSON structure + mmap-able arrays, one archive.

A fitted tree (or a whole fitted classifier) can be shipped to a serving
process without retraining:

* :func:`tree_to_dict` / :func:`tree_from_dict` — pure-JSON encoding of a
  :class:`~repro.core.tree.DecisionTree` (distributions inlined as lists;
  Python's ``repr``-based float serialisation makes the round trip
  bit-exact), also exposed as ``DecisionTree.to_dict`` / ``from_dict``;
* :func:`save_tree` / :func:`load_tree` — a single ``.zip`` archive holding
  ``model.json`` (structure, labels, metadata) plus the stacked
  class-distribution matrix, also exposed as ``DecisionTree.save`` /
  ``load``;
* :func:`save_model` / :func:`load_model` — the same archive for a fitted
  :class:`~repro.core.udt.UDTClassifier` / ``AveragingClassifier``,
  including constructor params (specs serialise declaratively) and the
  fitted sklearn-style attributes — and, since format version 2, for the
  bagged forests of :mod:`repro.ensemble` (``kind: "forest"``: one
  ``model.json`` holding every member tree plus its feature-column subset,
  all distribution vectors stacked into one shared matrix);
* :func:`model_from_payload` — rebuild a model from an already-parsed
  ``model.json`` payload plus its distribution matrix, however that matrix
  was obtained (mmap, npz, or a ``multiprocessing.shared_memory`` segment —
  the zero-copy attach path used by the serving worker pool).

Format history:

* **v1** — single trees (``kind: "decision_tree"``) and single-tree
  estimators (``kind: "estimator"``); arrays in compressed ``arrays.npz``.
* **v2** — adds forest archives (``kind: "forest"``).  The v1 layouts are
  unchanged, so v1 archives load bit-identically under v2 (golden-fixture
  tested in ``tests/property/test_persistence_roundtrip.py``).
* **v3** — replaces ``arrays.npz`` with ``arrays.bin``: the raw stacked
  float64 matrix stored *uncompressed* in the zip, its start page-aligned
  (4096 bytes) via local-header extra-field padding, and described by an
  ``arrays`` header in ``model.json`` (member name, dtype, shape, order).
  ``load_model`` memory-maps the member in place instead of decompressing a
  copy, and every tree node holds a row *view* into the shared matrix.
  Structure and JSON layout are otherwise identical to v2, so v3 round
  trips are bit-identical to v2; :func:`save_model` / :func:`save_tree`
  still emit v1/v2 on request (``format_version=``).

Whatever the archive version, loaded nodes reference rows of one shared
matrix (``model._shared_arrays``) — the v1/v2 path stacks the npz matrix in
memory, the v3 path maps the file — so per-model memory is O(matrix), not
O(matrix × nodes), and a serving parent can publish the matrix once to a
whole worker pool.

Every archive records ``format_version``; loading refuses versions newer
than :data:`FORMAT_VERSION` (:class:`~repro.exceptions.FormatVersionError`)
so old serving binaries fail loudly instead of silently misreading new
models.  Labels, categories and domains survive only for JSON-stable scalar
types (``str``/``int``/``float``/``bool``/``None``); anything else raises
:class:`~repro.exceptions.PersistenceError` at save time.
"""

from __future__ import annotations

import io
import json
import struct
import zipfile
from pathlib import Path
from typing import Hashable

import numpy as np

from repro.core.dataset import Attribute, AttributeKind
from repro.core.tree import DecisionTree, InternalNode, LeafNode, TreeNode
from repro.exceptions import FormatVersionError, PersistenceError

__all__ = [
    "FORMAT_VERSION",
    "tree_to_dict",
    "tree_from_dict",
    "save_tree",
    "load_tree",
    "save_model",
    "load_model",
    "model_from_payload",
    "read_model_metadata",
    "read_model_payload_bytes",
]

#: Current on-disk format version; bump on incompatible layout changes.
#: v1: single trees and single-tree estimators.  v2: adds ``kind: "forest"``
#: archives.  v3: mmap-able uncompressed ``arrays.bin`` replaces
#: ``arrays.npz`` (v1/v2 layouts keep loading bit-identically).
FORMAT_VERSION = 3

#: Name of the JSON member inside the archive.
_JSON_MEMBER = "model.json"

#: Name of the NPZ member inside v1/v2 archives.
_NPZ_MEMBER = "arrays.npz"

#: Name of the raw array-block member inside v3 archives.
_BIN_MEMBER = "arrays.bin"

#: Alignment (bytes) of the raw array block's file offset: one page, so the
#: mapped matrix shares clean page-cache pages across processes.
_ALIGN = 4096

#: Extra-field ID used for the alignment padding in the ``arrays.bin`` local
#: header (the "zipalign" technique: padding lives in the header's extra
#: field, so any zip reader still sees a perfectly ordinary stored member).
_PAD_EXTRA_ID = 0xD935

#: Node-dict keys whose values are class-distribution arrays.
_ARRAY_KEYS = ("distribution", "fallback", "training_distribution")

#: Internal marker set on restored leaf dicts whose stored distribution row
#: can be adopted verbatim by :meth:`LeafNode.restored` (already normalised,
#: no negative mass), skipping the constructor's renormalisation.
_VERBATIM_KEY = "_verbatim"


def _encode_scalar(value: Hashable, what: str):
    """Validate that a label/category survives the JSON round trip unchanged."""
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise PersistenceError(
        f"{what} {value!r} of type {type(value).__name__} cannot be serialised; "
        "use str, int, float, bool or None"
    )


def _encode_array(value, raw: bool):
    """One distribution vector: float64 ndarray (archive path) or list (JSON)."""
    array = np.asarray(value, dtype=float)
    return array if raw else array.tolist()


def _node_to_dict(node: TreeNode, raw: bool = False) -> dict:
    """Encode one node; ``raw=True`` keeps ndarrays (archive writers extract
    them into the stacked matrix, so the list round trip is skipped)."""
    if isinstance(node, LeafNode):
        return {
            "type": "leaf",
            "distribution": _encode_array(node.distribution, raw),
            "training_weight": float(node.training_weight),
        }
    assert isinstance(node, InternalNode)
    encoded: dict = {
        "attribute_index": int(node.attribute_index),
        "training_weight": float(node.training_weight),
        "training_distribution": (
            _encode_array(node.training_distribution, raw)
            if node.training_distribution is not None
            else None
        ),
    }
    if node.is_numerical_test:
        assert node.left is not None and node.right is not None
        encoded.update(
            type="num",
            split_point=float(node.split_point),
            left=_node_to_dict(node.left, raw),
            right=_node_to_dict(node.right, raw),
        )
    else:
        # Branch order is preserved (list of pairs, insertion order): batch
        # classification sums leaf contributions in branch order, so keeping
        # it makes reloaded predict_proba bit-identical.
        encoded.update(
            type="cat",
            branches=[
                [_encode_scalar(category, "branch category"), _node_to_dict(child, raw)]
                for category, child in node.branches.items()
            ],
            fallback=(
                _encode_array(node.fallback, raw) if node.fallback is not None else None
            ),
        )
    return encoded


def _node_from_dict(data: dict) -> TreeNode:
    node_type = data["type"]
    if node_type == "leaf":
        distribution = data["distribution"]
        training_weight = data.get("training_weight", 0.0)
        if isinstance(distribution, np.ndarray):
            # Archive path: the distribution is a row view into the shared
            # matrix.  _restore_arrays precomputed (vectorised, whole matrix
            # at once) whether the stored bits can be adopted verbatim —
            # already normalised, no negative mass — in which case the
            # constructor's checks and renormalisation are skipped entirely
            # and the leaf keeps the zero-copy view.
            if data.get(_VERBATIM_KEY):
                return LeafNode.restored(distribution, float(training_weight))
            return LeafNode(distribution, training_weight=training_weight)
        distribution = np.asarray(distribution, dtype=float)
        leaf = LeafNode(distribution, training_weight=training_weight)
        # Saved archives hold already-normalised distributions, but the
        # constructor's safety renormalisation (dist / sum) is not
        # bit-idempotent when the stored sum is 0.999... instead of exactly
        # 1.0 — restore those recorded bits verbatim so reloaded
        # predict_proba is bit-identical to the model that was saved.
        # Hand-built payloads with raw counts or all-zero vectors keep the
        # constructor's normalisation / uniform fallback.
        if abs(float(distribution.sum()) - 1.0) <= 1e-9:
            leaf.distribution = distribution
        return leaf
    training_distribution = data.get("training_distribution")
    if training_distribution is not None:
        training_distribution = np.asarray(training_distribution, dtype=float)
    if node_type == "num":
        return InternalNode(
            data["attribute_index"],
            split_point=data["split_point"],
            left=_node_from_dict(data["left"]),
            right=_node_from_dict(data["right"]),
            training_weight=data.get("training_weight", 0.0),
            training_distribution=training_distribution,
        )
    if node_type == "cat":
        fallback = data.get("fallback")
        return InternalNode(
            data["attribute_index"],
            branches={
                category: _node_from_dict(child) for category, child in data["branches"]
            },
            fallback=np.asarray(fallback, dtype=float) if fallback is not None else None,
            training_weight=data.get("training_weight", 0.0),
            training_distribution=training_distribution,
        )
    raise PersistenceError(f"unknown node type {node_type!r}")


def _tree_dict(tree: DecisionTree, raw: bool) -> dict:
    from repro import __version__

    return {
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "kind": "decision_tree",
        "attributes": [
            {
                "name": attribute.name,
                "kind": attribute.kind.value,
                "domain": [_encode_scalar(v, "domain value") for v in attribute.domain],
            }
            for attribute in tree.attributes
        ],
        "class_labels": [_encode_scalar(v, "class label") for v in tree.class_labels],
        "root": _node_to_dict(tree.root, raw),
    }


def tree_to_dict(tree: DecisionTree) -> dict:
    """Fully JSON-able encoding of a decision tree (arrays inlined)."""
    return _tree_dict(tree, raw=False)


def _check_version(data: dict) -> None:
    from repro import __version__

    version = data.get("format_version")
    if not isinstance(version, int) or version < 1:
        raise PersistenceError(f"missing or invalid format_version: {version!r}")
    if version > FORMAT_VERSION:
        raise FormatVersionError(
            f"model archive uses format version {version}, but this library "
            f"(repro {__version__}) supports up to version {FORMAT_VERSION}; "
            f"upgrade the repro library to load it",
            archive_version=version,
            supported_version=FORMAT_VERSION,
        )


def _resolve_format_version(format_version) -> int:
    """Validate a requested save format version (``None`` = current)."""
    if format_version is None:
        return FORMAT_VERSION
    try:
        version = int(format_version)
    except (TypeError, ValueError):
        raise PersistenceError(f"invalid format_version: {format_version!r}") from None
    if not 1 <= version <= FORMAT_VERSION:
        raise PersistenceError(
            f"cannot save format version {version}; this library "
            f"writes versions 1..{FORMAT_VERSION}"
        )
    return version


def _attributes_from_payload(entries: list) -> list[Attribute]:
    """Rebuild :class:`Attribute` schema objects from their JSON encoding."""
    attributes = []
    for entry in entries:
        kind = AttributeKind(entry["kind"])
        if kind is AttributeKind.CATEGORICAL:
            attributes.append(Attribute.categorical(entry["name"], tuple(entry["domain"])))
        else:
            attributes.append(Attribute.numerical(entry["name"]))
    return attributes


def tree_from_dict(data: dict) -> DecisionTree:
    """Inverse of :func:`tree_to_dict`."""
    _check_version(data)
    return DecisionTree(
        root=_node_from_dict(data["root"]),
        attributes=_attributes_from_payload(data["attributes"]),
        class_labels=tuple(data["class_labels"]),
    )


# -- archive layer (JSON + array block in one zip) -----------------------------


def _extract_arrays(node: dict, arrays: list) -> None:
    """Move distribution vectors out of ``node`` (in place) into ``arrays``.

    Values under the :data:`_ARRAY_KEYS` keys are replaced by an integer row
    index into the stacked matrix; ``None`` values stay ``None``.
    """
    for key in _ARRAY_KEYS:
        value = node.get(key)
        if isinstance(value, (list, np.ndarray)):
            node[key] = {"npz": len(arrays)}
            arrays.append(value)
    if node["type"] == "num":
        _extract_arrays(node["left"], arrays)
        _extract_arrays(node["right"], arrays)
    elif node["type"] == "cat":
        for _, child in node["branches"]:
            _extract_arrays(child, arrays)


def _verbatim_rows(matrix: np.ndarray) -> np.ndarray:
    """Rows adoptable verbatim by :meth:`LeafNode.restored` (one vectorised
    pass instead of a per-leaf sum): already normalised, no negative mass
    beyond the constructor's -1e-12 tolerance."""
    if matrix.size == 0:
        return np.zeros(matrix.shape[0] if matrix.ndim else 0, dtype=bool)
    verbatim = np.abs(matrix.sum(axis=1) - 1.0) <= 1e-9
    if verbatim.any():
        verbatim &= ~(matrix < -1e-12).any(axis=1)
    return verbatim


def _restore_arrays(node: dict, matrix: np.ndarray, verbatim: np.ndarray) -> None:
    """Replace row references with zero-copy row *views* into ``matrix``.

    No ``.tolist()`` round trip: every restored vector is a slice of the one
    shared (read-only) matrix, whether that matrix came from the npz member
    (v1/v2), an mmap of ``arrays.bin`` (v3), or a shared-memory segment.
    """
    for key in _ARRAY_KEYS:
        value = node.get(key)
        if isinstance(value, dict):
            row = value["npz"]
            node[key] = matrix[row]
            if key == "distribution":
                node[_VERBATIM_KEY] = bool(verbatim[row])
    if node["type"] == "num":
        _restore_arrays(node["left"], matrix, verbatim)
        _restore_arrays(node["right"], matrix, verbatim)
    elif node["type"] == "cat":
        for _, child in node["branches"]:
            _restore_arrays(child, matrix, verbatim)


def _restore_payload_arrays(payload: dict, matrix: np.ndarray) -> None:
    """Rewire every tree in ``payload`` onto row views of ``matrix``."""
    verbatim = _verbatim_rows(matrix)
    if "tree" in payload:
        _restore_arrays(payload["tree"]["root"], matrix, verbatim)
    for member in payload.get("trees") or ():
        _restore_arrays(member["root"], matrix, verbatim)


def _write_aligned_bin(archive: zipfile.ZipFile, matrix: np.ndarray) -> None:
    """Append ``arrays.bin`` uncompressed with its data start page-aligned.

    Alignment uses the zipalign technique: the local file header grows a
    padding extra field so the *data* (not the header) starts on a 4096-byte
    boundary, which keeps ``np.memmap`` views page-clean and shareable.
    """
    data = np.ascontiguousarray(matrix, dtype="<f8").tobytes()
    info = zipfile.ZipInfo(_BIN_MEMBER)
    info.compress_type = zipfile.ZIP_STORED
    info.external_attr = 0o644 << 16
    name_length = len(_BIN_MEMBER.encode("utf-8"))
    data_start = archive.start_dir + 30 + name_length
    pad = (-data_start) % _ALIGN
    if 0 < pad < 4:
        # An extra field needs a 4-byte header of its own.
        pad += _ALIGN
    if pad:
        info.extra = struct.pack("<HH", _PAD_EXTRA_ID, pad - 4) + bytes(pad - 4)
    archive.writestr(info, data)
    if data and (archive.start_dir - len(data)) % _ALIGN:
        raise PersistenceError("internal error: arrays.bin data is not page-aligned")


def _write_archive(path, payload: dict, format_version: int) -> None:
    """Write ``payload`` as a zip of ``model.json`` + the array block.

    All class-distribution vectors share one length (``n_classes``), so they
    stack into a single float64 matrix — exact, compact, and loadable
    without parsing the JSON number grammar.  v1/v2 store the matrix as
    compressed ``arrays.npz``; v3 stores it raw and page-aligned
    (``arrays.bin``) so loaders mmap it instead of copying.
    """
    if format_version < 2 and payload.get("kind") == "forest":
        raise PersistenceError(
            "forest archives need format version >= 2; "
            f"requested version {format_version}"
        )
    arrays: list = []
    if "tree" in payload:
        _extract_arrays(payload["tree"]["root"], arrays)
    for member in payload.get("trees") or ():
        # Forest archives: every member tree's vectors share the same
        # n_classes length, so they all stack into the one matrix.
        _extract_arrays(member["root"], arrays)
    matrix = (
        np.asarray(arrays, dtype=np.float64) if arrays else np.zeros((0, 0), dtype=np.float64)
    )
    payload["format_version"] = format_version
    if format_version >= 3:
        payload["arrays"] = {
            "member": _BIN_MEMBER,
            "dtype": "<f8",
            "shape": [int(matrix.shape[0]), int(matrix.shape[1])],
            "order": "C",
            "align": _ALIGN,
        }
    else:
        payload.pop("arrays", None)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr(_JSON_MEMBER, json.dumps(payload, indent=1, sort_keys=True))
        if format_version >= 3:
            _write_aligned_bin(archive, matrix)
        else:
            npz_buffer = io.BytesIO()
            np.savez_compressed(npz_buffer, distributions=matrix)
            archive.writestr(_NPZ_MEMBER, npz_buffer.getvalue())


def _member_data_offset(path: Path, info: zipfile.ZipInfo) -> int:
    """File offset of a stored member's first data byte.

    Parses the member's local file header (which may carry a longer extra
    field than the central directory's copy — that is where the alignment
    padding lives), so the offset is exact for any zip writer.
    """
    with open(path, "rb") as stream:
        stream.seek(info.header_offset)
        header = stream.read(30)
    if len(header) != 30 or header[:4] != b"PK\x03\x04":
        raise PersistenceError(f"corrupt local file header for {info.filename!r}")
    name_length, extra_length = struct.unpack("<HH", header[26:30])
    return info.header_offset + 30 + name_length + extra_length


def _read_matrix(
    archive: zipfile.ZipFile, path: Path, payload: dict, mmap_arrays: bool
) -> np.ndarray:
    """The stacked distribution matrix, mapped in place when possible.

    v3 archives (an ``arrays`` header in ``model.json``) memory-map the
    uncompressed ``arrays.bin`` member directly from the archive file —
    zero decompression, zero copy, pages shared with every other process
    mapping the same file.  v1/v2 archives decompress ``arrays.npz`` into
    one in-memory matrix.  Either way the result is read-only: every tree
    node aliases rows of it.
    """
    header = payload.get("arrays")
    if header is not None:
        member = header.get("member", _BIN_MEMBER)
        dtype = np.dtype(header["dtype"])
        shape = tuple(int(n) for n in header["shape"])
        if len(shape) != 2:
            raise PersistenceError(f"invalid arrays shape {shape!r}")
        count = shape[0] * shape[1]
        info = archive.getinfo(member)
        if info.file_size != count * dtype.itemsize:
            raise PersistenceError(
                f"array block {member!r} holds {info.file_size} bytes, "
                f"header promises {count * dtype.itemsize}"
            )
        if count == 0:
            return np.zeros(shape, dtype=dtype)
        if mmap_arrays and info.compress_type == zipfile.ZIP_STORED:
            offset = _member_data_offset(path, info)
            return np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=shape)
        matrix = np.frombuffer(archive.read(member), dtype=dtype).reshape(shape)
        return matrix
    with np.load(io.BytesIO(archive.read(_NPZ_MEMBER))) as npz:
        matrix = npz["distributions"]
    matrix.setflags(write=False)
    return matrix


def _read_archive(path, mmap_arrays: bool = True) -> tuple[dict, np.ndarray]:
    """Parse an archive into its payload (arrays restored as views) + matrix."""
    path = Path(path)
    try:
        with zipfile.ZipFile(path) as archive:
            payload = json.loads(archive.read(_JSON_MEMBER))
            # Version gate BEFORE touching the array member: a future (v4+)
            # archive must fail with FormatVersionError naming both versions,
            # never with a confusing missing-member error from a layout this
            # build does not know.
            _check_version(payload)
            matrix = _read_matrix(archive, path, payload, mmap_arrays)
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise PersistenceError(f"cannot read model archive {str(path)!r}: {exc}") from exc
    _restore_payload_arrays(payload, matrix)
    return payload, matrix


def save_tree(tree: DecisionTree, path, *, format_version: int | None = None) -> None:
    """Serialise a bare decision tree to a versioned zip archive.

    ``format_version`` selects the on-disk layout (default: current,
    :data:`FORMAT_VERSION`); pass ``2`` to produce archives loadable by
    older deployments.
    """
    version = _resolve_format_version(format_version)
    payload = _tree_dict(tree, raw=True)
    payload["tree"] = {"root": payload.pop("root")}
    _write_archive(path, payload, version)


def load_tree(path, *, mmap_arrays: bool = True) -> DecisionTree:
    """Load a tree saved by :func:`save_tree` (or the tree of a saved model).

    Leaf distributions are read-only views into one shared matrix, kept on
    the tree as ``_shared_arrays`` (an ``np.memmap`` for v3 archives).
    """
    payload, matrix = _read_archive(path, mmap_arrays=mmap_arrays)
    payload["root"] = payload.pop("tree")["root"]
    tree = tree_from_dict(payload)
    tree._shared_arrays = matrix
    return tree


# -- fitted estimators --------------------------------------------------------


def _encode_param(name: str, value):
    """JSON encoding of one constructor parameter."""
    from repro.api.spec import ColumnSpec, spec_to_dict

    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (ColumnSpec, dict, list, tuple)):
        return {"__spec__": spec_to_dict(value)}
    name_attr = getattr(value, "name", None)
    if isinstance(name_attr, str):
        # Strategy / measure instances reduce to their registry name.
        return name_attr
    raise PersistenceError(
        f"cannot serialise estimator parameter {name}={value!r}; "
        "use plain values, registry names, or declarative specs"
    )


def _decode_param(value):
    from repro.api.spec import spec_from_dict

    if isinstance(value, dict) and "__spec__" in value:
        return spec_from_dict(value["__spec__"])
    return value


def _estimator_payload(model, kind: str) -> dict:
    """The parts shared by single-tree and forest estimator archives."""
    from repro import __version__

    return {
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "kind": kind,
        "estimator_class": type(model).__name__,
        # Model lineage: when the snapshot was last (re)trained and how many
        # incremental partial_fit/refresh updates it carries — surfaced by
        # read_model_metadata and the serving GET /v1/models listing.
        "trained_at": getattr(model, "trained_at_", None),
        "update_generation": int(getattr(model, "update_generation_", 0) or 0),
        "params": {
            name: _encode_param(name, value)
            for name, value in model.get_params(deep=False).items()
        },
        "fitted": {
            "n_features_in": getattr(model, "n_features_in_", None),
            "feature_extents": [
                list(extent) if extent is not None else None
                for extent in getattr(model, "feature_extents_", None) or []
            ]
            or None,
        },
    }


def save_model(model, path, *, format_version: int | None = None) -> None:
    """Serialise a fitted classifier (params + fitted state + tree(s)).

    Single-tree estimators write ``kind: "estimator"`` archives; forests
    (anything fitted with a ``trees_`` list) write ``kind: "forest"``
    archives introduced by format version 2.  ``format_version`` selects
    the on-disk layout (default: current, :data:`FORMAT_VERSION`); pass
    ``2`` to produce archives loadable by older deployments.
    """
    version = _resolve_format_version(format_version)
    if getattr(model, "trees_", None):
        _save_forest(model, path, version)
        return
    tree = getattr(model, "tree_", None)
    if tree is None:
        raise PersistenceError("cannot save an unfitted model; call fit() first")
    tree_payload = _tree_dict(tree, raw=True)
    payload = _estimator_payload(model, "estimator")
    payload.update(
        tree={"root": tree_payload["root"]},
        attributes=tree_payload["attributes"],
        class_labels=tree_payload["class_labels"],
    )
    _write_archive(path, payload, version)


def _save_forest(model, path, format_version: int) -> None:
    """``kind: "forest"`` archive: every member tree plus its column subset."""
    feature_indices = getattr(model, "tree_feature_indices_", None)
    if feature_indices is None:
        feature_indices = [None] * len(model.trees_)
    payload = _estimator_payload(model, "forest")
    payload.update(
        attributes=[
            {
                "name": attribute.name,
                "kind": attribute.kind.value,
                "domain": [_encode_scalar(v, "domain value") for v in attribute.domain],
            }
            for attribute in model.attributes_
        ],
        class_labels=[
            _encode_scalar(v, "class label") for v in model._class_label_values
        ],
        trees=[
            {
                "root": _node_to_dict(tree.root, raw=True),
                "feature_indices": (
                    [int(i) for i in indices] if indices is not None else None
                ),
            }
            for tree, indices in zip(model.trees_, feature_indices)
        ],
    )
    _write_archive(path, payload, format_version)


def _estimator_classes() -> dict:
    from repro.core.averaging import AveragingClassifier
    from repro.core.udt import UDTClassifier
    from repro.ensemble import AveragingForestClassifier, UDTForestClassifier

    return {
        "UDTClassifier": UDTClassifier,
        "AveragingClassifier": AveragingClassifier,
        "UDTForestClassifier": UDTForestClassifier,
        "AveragingForestClassifier": AveragingForestClassifier,
    }


def read_model_metadata(path) -> dict:
    """Cheap metadata header of a saved archive, without loading the tree.

    Reads only the ``model.json`` member (the distribution matrix — npz or
    raw ``arrays.bin`` — stays untouched, and the node dictionaries are not
    converted back into tree objects), so a model registry can describe
    hundreds of archives without paying the full load cost.  For v3
    archives the returned ``arrays`` block mirrors the header that
    describes the mmap layout (member, dtype, shape); it is ``None`` for
    v1/v2.  Works for both estimator and bare-tree archives;
    estimator-only fields are ``None`` for trees.
    """
    path = Path(path)
    try:
        with zipfile.ZipFile(path) as archive:
            payload = json.loads(archive.read(_JSON_MEMBER))
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise PersistenceError(f"cannot read model archive {str(path)!r}: {exc}") from exc
    _check_version(payload)
    params = payload.get("params") or {}
    attributes = payload.get("attributes") or []
    class_labels = payload.get("class_labels") or []
    kind = payload.get("kind")
    is_forest = kind == "forest"
    arrays_header = payload.get("arrays")
    return {
        "kind": kind,
        # Collapsed tree/forest axis for listings: every archive holds
        # either one tree ("decision_tree" and "estimator" kinds) or a
        # forest of them — derived from the JSON header alone.
        "model_kind": "forest" if is_forest else "tree",
        "n_trees": len(payload.get("trees") or ()) if is_forest else 1,
        "estimator_class": payload.get("estimator_class"),
        "format_version": payload["format_version"],
        "repro_version": payload.get("repro_version"),
        "n_features": len(attributes),
        "n_classes": len(class_labels),
        "class_labels": list(class_labels),
        "attributes": [
            {"name": entry.get("name"), "kind": entry.get("kind")} for entry in attributes
        ],
        "engine": params.get("engine"),
        "strategy": params.get("strategy"),
        # Lineage (None / 0 for archives written before streaming updates).
        "trained_at": payload.get("trained_at"),
        "update_generation": int(payload.get("update_generation") or 0),
        "arrays": (
            {
                "member": arrays_header.get("member"),
                "dtype": arrays_header.get("dtype"),
                "shape": list(arrays_header.get("shape") or ()),
            }
            if isinstance(arrays_header, dict)
            else None
        ),
    }


def read_model_payload_bytes(path) -> bytes:
    """Raw bytes of the archive's ``model.json`` member.

    The serving parent pairs these bytes with the model's shared matrix in
    one ``multiprocessing.shared_memory`` segment, so pool workers rebuild
    the model (:func:`model_from_payload`) without ever opening the archive.
    """
    try:
        with zipfile.ZipFile(Path(path)) as archive:
            return archive.read(_JSON_MEMBER)
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise PersistenceError(f"cannot read model archive {str(path)!r}: {exc}") from exc


def _restore_fitted_arrays(model, payload: dict, attributes) -> None:
    """Apply the shared ``fitted`` block plus schema-derived attributes."""
    fitted = payload.get("fitted") or {}
    # Attribute names double as feature_names_in_, so name-keyed specs keep
    # resolving when the loaded model receives bare arrays.
    model.feature_names_in_ = [attribute.name for attribute in attributes]
    if fitted.get("n_features_in") is not None:
        model.n_features_in_ = fitted["n_features_in"]
    else:
        model.n_features_in_ = len(attributes)
    extents = fitted.get("feature_extents")
    if extents is not None:
        model.feature_extents_ = [
            tuple(extent) if extent is not None else None for extent in extents
        ]
    # Lineage survives the round trip; pre-streaming archives load as
    # generation 0 with no timestamp.
    model.trained_at_ = payload.get("trained_at")
    model.update_generation_ = int(payload.get("update_generation") or 0)


def _instantiate_estimator(payload: dict):
    classes = _estimator_classes()
    class_name = payload.get("estimator_class")
    estimator_class = classes.get(class_name)
    if estimator_class is None:
        raise PersistenceError(
            f"unknown estimator class {class_name!r}; expected one of {sorted(classes)}"
        )
    params = {name: _decode_param(value) for name, value in payload["params"].items()}
    return estimator_class(**params)


def _load_forest(payload: dict):
    """Rebuild a fitted forest from a ``kind: "forest"`` archive."""
    model = _instantiate_estimator(payload)
    attributes = _attributes_from_payload(payload["attributes"])
    class_labels = tuple(payload["class_labels"])
    trees = []
    feature_indices = []
    for member in payload["trees"]:
        indices = member.get("feature_indices")
        # A member's schema is its column subset of the full schema, so the
        # archive stores only the indices, never duplicate attribute entries.
        member_attributes = (
            attributes if indices is None else [attributes[i] for i in indices]
        )
        trees.append(
            DecisionTree(
                root=_node_from_dict(member["root"]),
                attributes=member_attributes,
                class_labels=class_labels,
            )
        )
        feature_indices.append(list(indices) if indices is not None else None)
    model.trees_ = trees
    model.tree_feature_indices_ = feature_indices
    model.attributes_ = tuple(attributes)
    model._class_label_values = class_labels
    model.classes_ = np.asarray(class_labels)
    _restore_fitted_arrays(model, payload, attributes)
    return model


def _model_from_restored(payload: dict, matrix: np.ndarray, what: str):
    """Estimator from a payload whose arrays are already restored to views."""
    kind = payload.get("kind")
    if kind == "forest":
        model = _load_forest(payload)
    elif kind == "estimator":
        model = _instantiate_estimator(payload)
        model.tree_ = tree_from_dict(
            {
                "format_version": payload["format_version"],
                "attributes": payload["attributes"],
                "class_labels": payload["class_labels"],
                "root": payload["tree"]["root"],
            }
        )
        model.classes_ = np.asarray(model.tree_.class_labels)
        _restore_fitted_arrays(model, payload, model.tree_.attributes)
    else:
        raise PersistenceError(
            f"archive {what} holds {kind!r}, not an estimator; "
            "use load_tree() for bare trees"
        )
    # The one matrix every node views into.  Keeping it on the model both
    # anchors the mmap's lifetime explicitly and gives the serving layer the
    # exact block to publish over shared memory.
    model._shared_arrays = matrix
    return model


def load_model(path, *, mmap_arrays: bool = True):
    """Load a classifier saved by :func:`save_model`, ready to predict.

    Handles ``kind: "estimator"`` and ``kind: "forest"`` archives of every
    supported format version.  For v3 archives the distribution matrix is
    memory-mapped straight out of the zip (set ``mmap_arrays=False`` to
    force an in-memory copy, e.g. when the archive file is about to be
    deleted); for v1/v2 it is decompressed once.  In all cases tree nodes
    hold read-only row views into the single shared matrix, exposed as
    ``model._shared_arrays``.
    """
    payload, matrix = _read_archive(path, mmap_arrays=mmap_arrays)
    return _model_from_restored(payload, matrix, repr(str(path)))


def model_from_payload(payload: dict, matrix: np.ndarray):
    """Rebuild a model from a parsed ``model.json`` payload plus its matrix.

    The zero-copy attach path: ``payload`` is the archive's JSON (arrays
    still encoded as row references) and ``matrix`` is the stacked
    distribution matrix from *anywhere* — an mmap, a decompressed npz, or a
    view into a ``multiprocessing.shared_memory`` segment published by the
    serving parent.  Mutates ``payload`` in place (row references become
    views) and returns the fitted estimator with ``_shared_arrays`` set.
    """
    _check_version(payload)
    _restore_payload_arrays(payload, matrix)
    return _model_from_restored(payload, matrix, "payload")
