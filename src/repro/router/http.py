"""Stdlib-only HTTP front-end for the router tier.

The same shape as the serving front-end (:mod:`repro.serve.http`) — a
:class:`http.server.ThreadingHTTPServer` whose handler threads share one
:class:`~repro.router.core.Router` — and the same wire protocol, so every
existing client (:class:`~repro.serve.client.ServingClient`, the load
generator, the benchmark drivers) can point at a router instead of a
replica without changing a line.

Endpoints (all JSON unless negotiated otherwise):

``GET /healthz``
    ``{"status": "ok"|"degraded", "replicas": [...], "ring_size": N}`` —
    ``degraded`` (still HTTP 200: the *router* is alive) when the ring is
    empty.
``GET /metrics``
    Router metrics with the same ``Accept`` negotiation as a replica:
    JSON snapshot by default, Prometheus text exposition under
    ``Accept: text/plain``.
``GET /v1/models``
    The model catalog aggregated across in-service replicas.
``GET /v1/models/<name>``
    One model's metadata, proxied to its owner replica.
``POST /v1/models/<name>:predict``
    Routed prediction (forest fan-out included).  503 + ``Retry-After``
    when no replica is in service; upstream 429s propagate with their
    ``retry_after_s`` hint intact.  Successful responses carry
    ``X-Repro-Hops`` (upstream calls used: 1 = no failover; fan-out sums
    its shards) and ``X-Repro-Upstream`` (the replica that answered, when
    a single one did); traced requests also echo ``X-Repro-Trace-Id``.
``GET /debug/traces``
    The router's bounded span buffer, grouped into traces (filters:
    ``trace_id``, ``model``, ``min_ms``, ``limit``).
``GET /admin/replicas``
    Per-replica health/drain/in-flight detail.
``POST /admin/drain`` / ``POST /admin/undrain``
    Body ``{"replica": "<url>", "timeout_s": 10}`` — drain-on-deploy:
    take the replica out of the ring, wait for its in-flight requests,
    report ``{"drained": true|false, "waited_s": ..., "inflight": ...}``.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ServingError
from repro.obs.log import get_logger
from repro.obs.trace import (
    HOPS_HEADER,
    TRACE_ID_HEADER,
    UPSTREAM_HEADER,
    Tracer,
    debug_traces_payload,
)
from repro.router.core import Router
from repro.serve.http import negotiate_metrics_format
from repro.serve.metrics import PROMETHEUS_CONTENT_TYPE

__all__ = ["RouterHTTPServer", "create_router"]

_log = get_logger(__name__)

#: Maximum accepted request-body size (64 MiB), matching the serving tier.
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the shared :class:`Router`."""

    protocol_version = "HTTP/1.1"
    server: "RouterHTTPServer"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            _log.info(
                "http_access",
                client=self.address_string(),
                request=format % args,
            )

    def _send_json(self, status: int, payload: dict, *, headers: "dict | None" = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        if status >= 400:
            # Same keep-alive hygiene as the serving tier: an error sent
            # before the body was drained must not poison the connection.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_serving_error(
        self, exc: ServingError, *, headers: "dict | None" = None
    ) -> None:
        payload: dict = {"error": str(exc)}
        merged: dict = dict(headers or {})
        if exc.retry_after is not None:
            payload["retry_after_s"] = float(exc.retry_after)
            merged["Retry-After"] = str(max(1, math.ceil(exc.retry_after)))
        status = exc.status or 502
        self._send_json(status, payload, headers=merged)

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServingError("request body is empty; send a JSON object", status=400)
        if length > _MAX_BODY_BYTES:
            raise ServingError(f"request body exceeds {_MAX_BODY_BYTES} bytes", status=413)
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServingError(f"request body is not valid JSON: {exc}", status=400) from exc
        if not isinstance(payload, dict):
            raise ServingError("request body must be a JSON object", status=400)
        return payload

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        router = self.server.router
        router.metrics.record_request()
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                topology = router.describe()
                topology["status"] = "ok" if topology["ring_size"] else "degraded"
                self._send_json(200, topology)
            elif path == "/metrics":
                wanted = negotiate_metrics_format(self.headers.get("Accept"))
                if wanted == "prometheus":
                    self._send_text(
                        200, router.metrics.render_prometheus(), PROMETHEUS_CONTENT_TYPE
                    )
                else:
                    self._send_json(200, router.metrics.snapshot())
            elif path == "/v1/models":
                self._send_json(200, {"models": router.models()})
            elif path == "/debug/traces":
                parts = self.path.split("?", 1)
                query = parts[1] if len(parts) == 2 else ""
                try:
                    payload = debug_traces_payload(self.server.tracer, query)
                except ValueError as exc:
                    raise ServingError(str(exc), status=400) from exc
                self._send_json(200, payload)
            elif path == "/admin/replicas":
                self._send_json(200, router.describe())
            elif path.startswith("/v1/models/"):
                name = path[len("/v1/models/"):]
                self._send_json(200, router.model(name))
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except ServingError as exc:
            self._send_serving_error(exc)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _response_headers(self, trace, meta: dict) -> "dict | None":
        """Routing/trace response headers: hops, final upstream, trace id."""
        headers: dict = {}
        hops = meta.get("hops")
        if hops:
            headers[HOPS_HEADER] = str(hops)
        upstream = meta.get("upstream")
        if upstream:
            headers[UPSTREAM_HEADER] = upstream
        if trace:
            headers[TRACE_ID_HEADER] = trace.trace_id
        return headers or None

    def _handle_predict(self, path: str, trace) -> None:
        router = self.server.router
        root = None
        meta: dict = {}
        try:
            name = path[len("/v1/models/"):-len(":predict")]
            if not name:
                raise ServingError("missing model name", status=404)
            payload = self._read_json_body()
            root = trace.span("router.predict", model=name)
            response = router.predict(name, payload, trace=trace, meta=meta)
        except ServingError as exc:
            if root is not None:
                root.set_tag("error", str(exc))
                root.end(status="error")
            self._send_serving_error(exc, headers=self._response_headers(trace, meta))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            if root is not None:
                root.set_tag("error", f"{type(exc).__name__}: {exc}")
                root.end(status="error")
            self._send_json(
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
                headers=self._response_headers(trace, meta),
            )
        else:
            if root is not None:
                if meta.get("hops"):
                    root.set_tag("hops", meta["hops"])
                if meta.get("shards"):
                    root.set_tag("shards", meta["shards"])
                if meta.get("upstream"):
                    root.set_tag("upstream", meta["upstream"])
                root.end()
            self._send_json(200, response, headers=self._response_headers(trace, meta))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        router = self.server.router
        router.metrics.record_request()
        path = self.path.split("?", 1)[0]
        if path.startswith("/v1/models/") and path.endswith(":predict"):
            trace = self.server.tracer.begin(self.headers)
            try:
                self._handle_predict(path, trace)
            finally:
                trace.finish()
            return
        try:
            if path in ("/admin/drain", "/admin/undrain"):
                payload = self._read_json_body()
                replica = payload.get("replica")
                if not isinstance(replica, str) or not replica:
                    raise ServingError(
                        'request needs a "replica" field (the replica base URL)',
                        status=400,
                    )
                if path == "/admin/drain":
                    timeout_s = payload.get("timeout_s", 10.0)
                    if not isinstance(timeout_s, (int, float)) or timeout_s < 0:
                        raise ServingError(
                            '"timeout_s" must be a non-negative number', status=400
                        )
                    self._send_json(200, router.drain(replica, timeout_s=float(timeout_s)))
                else:
                    self._send_json(200, router.undrain(replica))
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except ServingError as exc:
            self._send_serving_error(exc)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})


class RouterHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`Router`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple,
        router: Router,
        *,
        verbose: bool = False,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.router = router
        self.verbose = verbose
        # A default (rate-0) tracer still honours propagated sampled
        # contexts and serves /debug/traces — a router behind a tracing
        # edge needs no flags of its own.
        self.tracer = tracer if tracer is not None else Tracer("router")
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Shut down the listener, the health prober and the sync loop."""
        self.shutdown()
        self.server_close()
        self.router.close()


def create_router(
    replicas,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    start: bool = True,
    verbose: bool = False,
    trace_sample_rate: float = 0.0,
    trace_slow_ms: "float | None" = None,
    trace_buffer: int = 2048,
    trace_export=None,
    **router_kwargs,
) -> RouterHTTPServer:
    """Wire a :class:`Router` over ``replicas`` and bind its HTTP server.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    available as ``server.url``.  ``start=True`` (the default) runs the
    initial registry sync and a synchronous first health sweep before
    binding, then starts the background loops — so the first request ever
    received already sees a populated ring.  The ``trace_*`` arguments
    configure the router-side :class:`~repro.obs.trace.Tracer` — the
    router is usually the tracing *edge*, so ``trace_sample_rate`` here
    decides which requests get traced end to end.  Remaining keyword
    arguments go to :class:`~repro.router.core.Router` verbatim.
    """
    if not replicas:
        raise ServingError("the router needs at least one replica URL")
    try:
        tracer = Tracer(
            "router",
            sample_rate=trace_sample_rate,
            slow_ms=trace_slow_ms,
            buffer_size=trace_buffer,
            export_path=trace_export,
        )
    except ValueError as exc:
        raise ServingError(str(exc)) from exc
    router = Router(replicas, **router_kwargs)
    try:
        if start:
            router.start()
        return RouterHTTPServer((host, port), router, verbose=verbose, tracer=tracer)
    except BaseException:
        # A failed first sync or a port collision must not strand the
        # prober/sync threads.
        router.close()
        raise
