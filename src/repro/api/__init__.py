"""Array-first public API: specs, estimators, persistence.

This package is the canonical entry point for users with plain numpy data:

* **uncertainty-spec builders** (:mod:`repro.api.spec`) — declare how raw
  values become distributions (:func:`gaussian`, :func:`uniform`,
  :func:`point`, :func:`samples`, :func:`categorical`) and build datasets
  with :func:`build_dataset`;
* **sklearn-protocol estimators** (:mod:`repro.api.estimators`) —
  :class:`UDTClassifier` / :class:`AveragingClassifier` with
  ``fit(X, y)`` / ``predict`` / ``predict_proba`` / ``score`` on arrays and
  datasets, plus ``get_params`` / ``set_params`` so scikit-learn's
  ``clone``, ``cross_val_score`` and ``GridSearchCV`` work by duck typing;
* **versioned model persistence** (:mod:`repro.api.persistence`) —
  ``model.save(path)`` / :func:`load_model`, ``DecisionTree.to_dict`` /
  ``from_dict``, JSON + NPZ in one archive, ``format_version``-checked.

The object-based API (:class:`~repro.core.dataset.UncertainDataset` and
friends) remains fully supported; every estimator accepts both.
"""

from repro.api.estimators import (
    AveragingClassifier,
    BaseTreeEstimator,
    UDTClassifier,
    clone_estimator,
)
from repro.api.persistence import (
    FORMAT_VERSION,
    load_model,
    load_tree,
    read_model_metadata,
    save_model,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.api.spec import (
    CategoricalSpec,
    ColumnSpec,
    GaussianSpec,
    PointSpec,
    SamplesSpec,
    UniformSpec,
    build_dataset,
    categorical,
    column_extents,
    compute_extents,
    dataset_extents,
    gaussian,
    point,
    resolve_table_spec,
    samples,
    spec_from_dict,
    spec_to_dict,
    uniform,
)

__all__ = [
    "AveragingClassifier",
    "BaseTreeEstimator",
    "CategoricalSpec",
    "ColumnSpec",
    "FORMAT_VERSION",
    "GaussianSpec",
    "PointSpec",
    "SamplesSpec",
    "UDTClassifier",
    "UniformSpec",
    "build_dataset",
    "categorical",
    "clone_estimator",
    "column_extents",
    "compute_extents",
    "dataset_extents",
    "gaussian",
    "load_model",
    "load_tree",
    "point",
    "read_model_metadata",
    "resolve_table_spec",
    "samples",
    "save_model",
    "save_tree",
    "spec_from_dict",
    "spec_to_dict",
    "tree_from_dict",
    "tree_to_dict",
    "uniform",
]
