"""Unit tests for the bagged forests (:mod:`repro.ensemble`).

The load-bearing properties: training is deterministic given
``random_state`` (bit-identical probabilities, identical member trees),
parallel training equals sequential training exactly, bootstrap samples
that miss a class still vote with aligned probability columns, and the
sklearn parameter protocol (clone / get_params / set_params) holds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import UncertainDataset
from repro.ensemble import AveragingForestClassifier, UDTForestClassifier
from repro.api.spec import gaussian
from repro.exceptions import DatasetError, TreeError


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(31)
    X = rng.normal(size=(70, 4))
    y = np.where(X[:, 0] + 0.5 * X[:, 2] > 0, "pos", "neg")
    return X, y


def small_forest(**overrides) -> UDTForestClassifier:
    options = dict(
        n_estimators=5, spec=gaussian(w=0.1, s=6), min_split_weight=4.0, random_state=9
    )
    options.update(overrides)
    return UDTForestClassifier(**options)


class TestDeterminism:
    def test_same_random_state_same_forest(self, arrays):
        X, y = arrays
        first = small_forest().fit(X, y)
        second = small_forest().fit(X, y)
        assert [t.structure_signature() for t in first.trees_] == [
            t.structure_signature() for t in second.trees_
        ]
        assert np.array_equal(first.predict_proba(X), second.predict_proba(X))

    def test_different_random_state_different_forest(self, arrays):
        X, y = arrays
        first = small_forest(random_state=9).fit(X, y)
        second = small_forest(random_state=10).fit(X, y)
        assert [t.structure_signature() for t in first.trees_] != [
            t.structure_signature() for t in second.trees_
        ]

    def test_parallel_training_matches_sequential_exactly(self, arrays):
        X, y = arrays
        sequential = small_forest(n_jobs=1).fit(X, y)
        parallel = small_forest(n_jobs=3).fit(X, y)
        assert [t.structure_signature() for t in sequential.trees_] == [
            t.structure_signature() for t in parallel.trees_
        ]
        assert sequential.tree_feature_indices_ == parallel.tree_feature_indices_
        assert np.array_equal(sequential.predict_proba(X), parallel.predict_proba(X))

    def test_parallel_matches_sequential_with_feature_subsample(self, arrays):
        X, y = arrays
        sequential = small_forest(feature_subsample="sqrt", n_jobs=1).fit(X, y)
        parallel = small_forest(feature_subsample="sqrt", n_jobs=2).fit(X, y)
        assert sequential.tree_feature_indices_ == parallel.tree_feature_indices_
        assert np.array_equal(sequential.predict_proba(X), parallel.predict_proba(X))


class TestBagging:
    def test_members_see_different_bootstrap_samples(self, arrays):
        X, y = arrays
        forest = small_forest().fit(X, y)
        signatures = {t.structure_signature() for t in forest.trees_}
        assert len(signatures) > 1  # resampling actually diversified members

    def test_no_bootstrap_no_subsample_members_are_identical(self, arrays):
        X, y = arrays
        forest = small_forest(bootstrap=False).fit(X, y)
        signatures = {t.structure_signature() for t in forest.trees_}
        assert len(signatures) == 1

    def test_feature_subsample_projects_members(self, arrays):
        X, y = arrays
        forest = small_forest(feature_subsample=2).fit(X, y)
        for tree, indices in zip(forest.trees_, forest.tree_feature_indices_):
            assert len(indices) == 2
            assert indices == sorted(indices)
            assert len(tree.attributes) == 2
        assert forest.n_features_in_ == 4  # the forest still expects full rows

    def test_probability_columns_stay_aligned_on_rare_classes(self):
        # 3 classes, one so rare that bootstrap samples routinely miss it;
        # subset()/select_attributes() preserve class_labels, so every
        # member's vote matrix must still have 3 aligned columns.
        rng = np.random.default_rng(2)
        X = rng.normal(size=(40, 3))
        y = np.array(["a"] * 19 + ["b"] * 19 + ["rare"] * 2)
        forest = small_forest(n_estimators=7).fit(X, y)
        probabilities = forest.predict_proba(X)
        assert probabilities.shape == (40, 3)
        assert list(forest.classes_) == ["a", "b", "rare"]
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)

    def test_soft_vote_is_mean_of_member_votes(self, arrays):
        X, y = arrays
        forest = small_forest(n_estimators=3, feature_subsample=None).fit(X, y)
        dataset = forest._prepare_eval(forest._coerce_eval(X[:7]))
        member_votes = [tree.classify_batch(dataset) for tree in forest.trees_]
        expected = (member_votes[0] + member_votes[1] + member_votes[2]) / 3
        assert np.array_equal(forest.predict_proba(X[:7]), expected)


class TestEstimatorProtocol:
    def test_fit_on_dataset(self, small_uncertain: UncertainDataset):
        forest = small_forest(n_estimators=3).fit(small_uncertain)
        assert forest.n_trees_ == 3
        assert forest.score(small_uncertain) > 0.5
        probabilities = forest.predict_proba(small_uncertain)
        assert probabilities.shape == (len(small_uncertain), small_uncertain.n_classes)

    def test_predict_single_tuple(self, small_uncertain: UncertainDataset):
        forest = small_forest(n_estimators=3).fit(small_uncertain)
        item = small_uncertain.tuples[0]
        label = forest.predict(item)
        assert label in small_uncertain.class_labels
        vector = forest.predict_proba(item)
        assert vector.shape == (small_uncertain.n_classes,)

    def test_empty_and_flat_row_batches(self, arrays):
        X, y = arrays
        forest = small_forest(n_estimators=3, feature_subsample="sqrt").fit(X, y)
        empty = forest.predict_proba(np.zeros((0, 4)))
        assert empty.shape == (0, 2)
        flat = forest.predict_proba(X[0])
        assert flat.shape == (1, 2)
        assert forest.predict(np.zeros((0, 4))).shape == (0,)

    def test_batch_aliases(self, arrays):
        X, y = arrays
        forest = small_forest(n_estimators=3).fit(X, y)
        labels = forest.predict_batch(X[:5])
        assert isinstance(labels, list)
        assert labels == list(forest.predict(X[:5]))
        assert np.array_equal(
            forest.predict_proba_batch(X[:5]), forest.predict_proba(X[:5])
        )

    def test_clone_and_params_roundtrip(self, arrays):
        from repro.core.estimator import clone_estimator

        X, y = arrays
        forest = small_forest(feature_subsample=0.5).fit(X, y)
        cloned = clone_estimator(forest)
        assert cloned.trees_ is None
        assert cloned.get_params(deep=False) == forest.get_params(deep=False)
        refit = cloned.fit(X, y)
        assert np.array_equal(refit.predict_proba(X), forest.predict_proba(X))

    def test_unfitted_raises(self, arrays):
        X, _ = arrays
        with pytest.raises(TreeError):
            small_forest().predict(X)
        with pytest.raises(TreeError):
            small_forest().predict_proba(X)

    def test_averaging_forest_collapses_to_means(self, small_uncertain):
        forest = AveragingForestClassifier(
            n_estimators=3, min_split_weight=4.0, random_state=9
        ).fit(small_uncertain)
        point_forest = AveragingForestClassifier(
            n_estimators=3, min_split_weight=4.0, random_state=9
        ).fit(small_uncertain.to_point_dataset())
        assert [t.structure_signature() for t in forest.trees_] == [
            t.structure_signature() for t in point_forest.trees_
        ]


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_bad_n_estimators(self, arrays, bad):
        X, y = arrays
        with pytest.raises(TreeError):
            small_forest(n_estimators=bad).fit(X, y)

    @pytest.mark.parametrize("bad", [-1, 0.0, 1.5, True, "half"])
    def test_bad_feature_subsample(self, arrays, bad):
        X, y = arrays
        with pytest.raises(TreeError):
            small_forest(feature_subsample=bad).fit(X, y)

    def test_bad_random_state(self, arrays):
        X, y = arrays
        with pytest.raises(TreeError):
            small_forest(random_state=-1).fit(X, y)

    def test_empty_dataset(self, small_uncertain):
        empty = small_uncertain.replace_tuples([])
        with pytest.raises(DatasetError):
            small_forest().fit(empty)
