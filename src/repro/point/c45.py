"""Classical C4.5-style decision tree for point-valued data.

This is an independent substrate used for two purposes:

1. it provides the classical reference classifier the paper compares AVG
   against (the paper reports that C4.5 accuracies are "very similar" to
   AVG's — our tests verify the same on the shared data model); and
2. it hosts the Section 7.5 ablation: the pruning-by-bounding and end-point
   sampling techniques, designed for uncertain data, applied to plain point
   data to reduce the number of entropy evaluations when the number of
   tuples is large.

Unlike :mod:`repro.core`, which works on pdf-valued tuples, this module
operates directly on dense numpy arrays ``(X, y)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.dispersion import DispersionMeasure, get_measure
from repro.exceptions import DatasetError, TreeError

__all__ = ["PointSplitStats", "PointSplitSearch", "C45Classifier", "SEARCH_MODES"]

#: Candidate-search modes of :class:`PointSplitSearch`.
SEARCH_MODES = ("exhaustive", "boundary", "bounded", "bounded-sampled")

_EPS = 1e-12


@dataclass
class PointSplitStats:
    """Counters of dispersion and lower-bound evaluations (Sec. 7.5 metric)."""

    entropy_evaluations: int = 0
    lower_bound_evaluations: int = 0

    @property
    def total(self) -> int:
        return self.entropy_evaluations + self.lower_bound_evaluations

    def merge(self, other: "PointSplitStats") -> None:
        self.entropy_evaluations += other.entropy_evaluations
        self.lower_bound_evaluations += other.lower_bound_evaluations


class PointSplitSearch:
    """Best-split search over one numerical column of point data.

    Parameters
    ----------
    measure:
        Dispersion measure (entropy by default).
    mode:
        * ``"exhaustive"`` — evaluate every distinct value (classic C4.5).
        * ``"boundary"`` — evaluate only class-boundary values (Fayyad &
          Irani); the point-data analogue of Theorems 1 and 2.
        * ``"bounded"`` — partition the values into blocks, evaluate block
          end points, and use the Eq. 3 lower bound to discard blocks
          (Sec. 7.5 pruning by bounding).
        * ``"bounded-sampled"`` — like ``"bounded"`` but the pruning
          threshold is derived from a sample of the block end points
          (Sec. 7.5 end-point sampling).
    block_size:
        Number of distinct values per block for the bounded modes.
    sample_fraction:
        Fraction of block end points evaluated up front in
        ``"bounded-sampled"`` mode.
    """

    def __init__(
        self,
        measure: str | DispersionMeasure = "entropy",
        mode: str = "exhaustive",
        *,
        block_size: int = 16,
        sample_fraction: float = 0.1,
    ) -> None:
        if mode not in SEARCH_MODES:
            raise DatasetError(f"unknown search mode {mode!r}; expected one of {SEARCH_MODES}")
        if block_size < 2:
            raise DatasetError("block_size must be at least 2")
        if not 0.0 < sample_fraction <= 1.0:
            raise DatasetError("sample_fraction must be in (0, 1]")
        self.measure = get_measure(measure)
        self.mode = mode
        self.block_size = block_size
        self.sample_fraction = sample_fraction

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _prefix_counts(values: np.ndarray, classes: np.ndarray, n_classes: int):
        """Distinct sorted values with cumulative per-class counts up to each value."""
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_classes = classes[order]
        one_hot = np.zeros((values.size, n_classes))
        one_hot[np.arange(values.size), sorted_classes] = 1.0
        cumulative = np.cumsum(one_hot, axis=0)
        distinct, last_index = np.unique(sorted_values, return_index=True)
        # index of the *last* occurrence of each distinct value
        last_occurrence = np.append(last_index[1:], values.size) - 1
        prefix = cumulative[last_occurrence]
        return distinct, prefix

    def _evaluate(
        self,
        prefix: np.ndarray,
        indices: np.ndarray,
        totals: np.ndarray,
        stats: PointSplitStats,
    ) -> tuple[int | None, float]:
        """Evaluate the candidates at ``indices`` and return (best index, dispersion)."""
        if indices.size == 0:
            return None, float("inf")
        stats.entropy_evaluations += int(indices.size)
        left = prefix[indices]
        dispersion = self.measure.split_dispersion_batch(left, totals)
        left_sizes = left.sum(axis=1)
        total = totals.sum()
        valid = (left_sizes > _EPS) & (left_sizes < total - _EPS)
        dispersion = np.where(valid, dispersion, np.inf)
        best = int(np.argmin(dispersion))
        if not np.isfinite(dispersion[best]):
            return None, float("inf")
        return int(indices[best]), float(dispersion[best])

    # -- public API ---------------------------------------------------------------

    def best_split(
        self,
        values: np.ndarray,
        classes: np.ndarray,
        n_classes: int,
        stats: PointSplitStats | None = None,
    ) -> tuple[float | None, float]:
        """Best split point of one column, under the configured search mode.

        ``classes`` holds integer class indices in ``[0, n_classes)``.
        Returns ``(split_value, dispersion)``; ``(None, inf)`` when the
        column cannot be split (fewer than two distinct values).
        """
        stats = stats if stats is not None else PointSplitStats()
        values = np.asarray(values, dtype=float)
        classes = np.asarray(classes, dtype=int)
        if values.shape != classes.shape:
            raise DatasetError("values and classes must have the same shape")
        distinct, prefix = self._prefix_counts(values, classes, n_classes)
        if distinct.size < 2:
            return None, float("inf")
        totals = prefix[-1]
        candidate_indices = np.arange(distinct.size - 1)  # exclude the maximum

        if self.mode == "exhaustive":
            best_index, best_value = self._evaluate(prefix, candidate_indices, totals, stats)
        elif self.mode == "boundary":
            boundary = self._boundary_indices(prefix, candidate_indices)
            best_index, best_value = self._evaluate(prefix, boundary, totals, stats)
        else:
            best_index, best_value = self._bounded_search(
                prefix, candidate_indices, totals, stats,
                sampled=(self.mode == "bounded-sampled"),
            )
        if best_index is None:
            return None, float("inf")
        return float(distinct[best_index]), best_value

    @staticmethod
    def _boundary_indices(prefix: np.ndarray, candidate_indices: np.ndarray) -> np.ndarray:
        """Candidates where the class mixture changes between adjacent values."""
        counts = np.diff(prefix, axis=0, prepend=np.zeros((1, prefix.shape[1])))
        majority = np.argmax(counts, axis=1)
        pure = (counts > 0).sum(axis=1) <= 1
        keep = []
        for index in candidate_indices:
            same_single_class = (
                pure[index]
                and pure[index + 1]
                and majority[index] == majority[index + 1]
            )
            if not same_single_class:
                keep.append(index)
        return np.asarray(keep, dtype=int)

    def _bounded_search(
        self,
        prefix: np.ndarray,
        candidate_indices: np.ndarray,
        totals: np.ndarray,
        stats: PointSplitStats,
        *,
        sampled: bool,
    ) -> tuple[int | None, float]:
        """Block-based pruning by bounding (with optional end-point sampling)."""
        n = candidate_indices.size
        block_edges = np.arange(0, n, self.block_size)
        block_edges = np.append(block_edges, n - 1)
        block_edges = np.unique(block_edges)
        edge_indices = candidate_indices[block_edges]

        if sampled and edge_indices.size > 2:
            target = max(int(round(edge_indices.size * self.sample_fraction)), 2)
            chosen = np.unique(
                np.linspace(0, edge_indices.size - 1, target).round().astype(int)
            )
            threshold_edges = edge_indices[chosen]
        else:
            threshold_edges = edge_indices

        best_index, best_value = self._evaluate(prefix, threshold_edges, totals, stats)
        threshold = best_value

        for block_number in range(block_edges.size - 1):
            start = int(block_edges[block_number])
            end = int(block_edges[block_number + 1])
            interior = candidate_indices[start + 1 : end]
            if interior.size == 0:
                continue
            stats.lower_bound_evaluations += 1
            n_c = prefix[candidate_indices[start]]
            upto_end = prefix[candidate_indices[end]]
            k_c = np.clip(upto_end - n_c, 0.0, None)
            m_c = np.clip(totals - upto_end, 0.0, None)
            bound = self.measure.interval_lower_bound(n_c, k_c, m_c)
            if bound >= threshold:
                continue
            index, value = self._evaluate(prefix, interior, totals, stats)
            if value < best_value:
                best_index, best_value = index, value
                threshold = min(threshold, value)
        return best_index, best_value


@dataclass
class _PointNode:
    """Internal representation of a point-data tree node."""

    is_leaf: bool
    distribution: np.ndarray | None = None
    attribute: int | None = None
    threshold: float | None = None
    left: "_PointNode | None" = None
    right: "_PointNode | None" = None

    def subtree_size(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + self.left.subtree_size() + self.right.subtree_size()


class C45Classifier:
    """A minimal but complete C4.5-style classifier on numpy point data.

    Parameters
    ----------
    measure, mode, block_size, sample_fraction:
        Forwarded to :class:`PointSplitSearch`.
    max_depth:
        Maximum tree depth (``None`` for unlimited).
    min_samples_split:
        Minimum number of tuples required to attempt a split.
    min_dispersion_gain:
        Minimum dispersion reduction for a split to be accepted.
    """

    def __init__(
        self,
        measure: str | DispersionMeasure = "entropy",
        mode: str = "exhaustive",
        *,
        block_size: int = 16,
        sample_fraction: float = 0.1,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_dispersion_gain: float = 1e-9,
    ) -> None:
        self._search = PointSplitSearch(
            measure=measure, mode=mode, block_size=block_size, sample_fraction=sample_fraction
        )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_dispersion_gain = min_dispersion_gain
        self.classes_: tuple[Hashable, ...] | None = None
        self.stats_ = PointSplitStats()
        self._root: _PointNode | None = None

    # -- fitting ------------------------------------------------------------------

    def fit(self, values: np.ndarray, labels: Sequence[Hashable]) -> "C45Classifier":
        """Build the tree from an ``(n, k)`` value array and ``n`` labels."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise DatasetError("values must be a 2-D array")
        if values.shape[0] != len(labels):
            raise DatasetError("number of labels does not match number of rows")
        if values.shape[0] == 0:
            raise DatasetError("cannot fit a tree on an empty dataset")
        self.classes_ = tuple(sorted(set(labels), key=repr))
        label_index = {label: i for i, label in enumerate(self.classes_)}
        classes = np.asarray([label_index[label] for label in labels], dtype=int)
        self.stats_ = PointSplitStats()
        self._root = self._build(values, classes, depth=0)
        return self

    def _distribution(self, classes: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        counts = np.bincount(classes, minlength=len(self.classes_)).astype(float)
        total = counts.sum()
        return counts / total if total > 0 else np.full(counts.size, 1.0 / counts.size)

    def _build(self, values: np.ndarray, classes: np.ndarray, depth: int) -> _PointNode:
        assert self.classes_ is not None
        distribution = self._distribution(classes)
        homogeneous = np.unique(classes).size <= 1
        depth_reached = self.max_depth is not None and depth >= self.max_depth
        too_small = classes.size < self.min_samples_split
        if homogeneous or depth_reached or too_small:
            return _PointNode(is_leaf=True, distribution=distribution)

        node_dispersion = self._search.measure.node_dispersion(
            np.bincount(classes, minlength=len(self.classes_)).astype(float)
        )
        best_attribute: int | None = None
        best_threshold: float | None = None
        best_value = float("inf")
        for attribute in range(values.shape[1]):
            threshold, value = self._search.best_split(
                values[:, attribute], classes, len(self.classes_), self.stats_
            )
            if threshold is not None and value < best_value:
                best_attribute, best_threshold, best_value = attribute, threshold, value
        if (
            best_attribute is None
            or best_threshold is None
            or node_dispersion - best_value < self.min_dispersion_gain
        ):
            return _PointNode(is_leaf=True, distribution=distribution)

        mask = values[:, best_attribute] <= best_threshold
        if not mask.any() or mask.all():
            return _PointNode(is_leaf=True, distribution=distribution)
        left = self._build(values[mask], classes[mask], depth + 1)
        right = self._build(values[~mask], classes[~mask], depth + 1)
        return _PointNode(
            is_leaf=False,
            attribute=best_attribute,
            threshold=float(best_threshold),
            left=left,
            right=right,
            distribution=distribution,
        )

    # -- prediction ---------------------------------------------------------------

    def _require_root(self) -> _PointNode:
        if self._root is None:
            raise TreeError("the classifier has not been fitted yet; call fit() first")
        return self._root

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the fitted tree."""
        return self._require_root().subtree_size()

    def predict_proba(self, values: np.ndarray) -> np.ndarray:
        """Class-probability matrix for an ``(n, k)`` value array."""
        root = self._require_root()
        assert self.classes_ is not None
        values = np.atleast_2d(np.asarray(values, dtype=float))
        result = np.zeros((values.shape[0], len(self.classes_)))
        for row in range(values.shape[0]):
            node = root
            while not node.is_leaf:
                assert node.attribute is not None and node.threshold is not None
                assert node.left is not None and node.right is not None
                node = node.left if values[row, node.attribute] <= node.threshold else node.right
            assert node.distribution is not None
            result[row] = node.distribution
        return result

    def predict(self, values: np.ndarray) -> list[Hashable]:
        """Predicted labels for an ``(n, k)`` value array."""
        probabilities = self.predict_proba(values)
        assert self.classes_ is not None
        return [self.classes_[int(i)] for i in np.argmax(probabilities, axis=1)]

    def score(self, values: np.ndarray, labels: Sequence[Hashable]) -> float:
        """Accuracy on labelled point data."""
        predictions = self.predict(values)
        if not len(labels):
            raise DatasetError("cannot score an empty dataset")
        correct = sum(1 for p, t in zip(predictions, labels) if p == t)
        return correct / len(labels)
