"""Shared fixtures for the router-tier tests.

One small forest (large enough to cross the tests' fan-out threshold) and
one single-tree model are trained per session; each test builds isolated
replica model directories from them via the router's own archive sync, so
the replicas serve exactly what a production deployment would.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import UDTClassifier
from repro.api.spec import gaussian
from repro.ensemble import UDTForestClassifier
from repro.router import create_router
from repro.router.sync import sync_archives
from repro.serve import create_server


@pytest.fixture(scope="session")
def router_forest():
    """A fitted 6-member forest (>= the tests' fan-out threshold of 4)."""
    rng = np.random.default_rng(3)
    X = rng.normal(size=(50, 3))
    y = np.where(X[:, 0] - X[:, 2] > 0, "up", "down")
    return UDTForestClassifier(
        n_estimators=6, spec=gaussian(w=0.1, s=6), random_state=0
    ).fit(X, y)


@pytest.fixture(scope="session")
def router_tree():
    """A fitted single-tree model (never fans out)."""
    rng = np.random.default_rng(5)
    X = rng.normal(size=(40, 3))
    y = np.where(X[:, 1] > 0, "pos", "neg")
    return UDTClassifier(spec=gaussian(w=0.1, s=6), min_split_weight=4.0).fit(X, y)


@pytest.fixture(scope="session")
def router_rows():
    """Deterministic unseen feature rows matching both models."""
    return np.random.default_rng(11).normal(size=(12, 3))


@pytest.fixture
def source_dir(tmp_path, router_forest, router_tree):
    """The source-of-truth archive directory (what a deploy publishes)."""
    source = tmp_path / "source"
    source.mkdir()
    router_forest.save(source / "forest.zip")
    router_tree.save(source / "tree.zip")
    return source


@pytest.fixture
def replica_servers(tmp_path, source_dir):
    """Two live replica servers over synced copies of the source archives."""
    dirs = [tmp_path / "replica-0", tmp_path / "replica-1"]
    sync_archives(source_dir, dirs)
    servers = []
    try:
        for directory in dirs:
            server = create_server(directory, port=0)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            servers.append(server)
        yield servers
    finally:
        for server in servers:
            server.close()


@pytest.fixture
def router_server(replica_servers):
    """A started router over both replicas, fan-out threshold lowered to 4.

    ``up_after=1`` / ``down_after=1`` make health transitions take effect
    on the next observation, so the kill-a-replica tests converge within
    one (short) health-check interval.
    """
    server = create_router(
        [replica.url for replica in replica_servers],
        port=0,
        fanout_trees=4,
        health_interval_s=0.2,
        health_timeout_s=0.5,
        up_after=1,
        down_after=1,
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        yield server
    finally:
        server.close()
