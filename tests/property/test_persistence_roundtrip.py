"""Property: save → load yields an identical tree and bit-identical predictions.

The satellite acceptance test for model persistence: for every fixture
dataset (numerical, uniform-pdf, Iris-shaped, mixed categorical, and the
handcrafted Table 1 example), a fitted classifier survives the
``model.json`` + ``arrays.npz`` archive round trip with

* an identical tree (``structure_signature`` equality covers topology,
  split points and leaf distributions), and
* bit-identical ``predict_proba`` output (``np.array_equal``, not
  ``allclose``) on the training set itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import load_model
from repro.core import AveragingClassifier, DecisionTree, UDTClassifier

#: Names of conftest dataset fixtures the round trip must hold on.
_DATASET_FIXTURES = (
    "table1",
    "small_uncertain",
    "uniform_uncertain",
    "iris_like",
    "mixed_dataset",
)


@pytest.fixture(params=_DATASET_FIXTURES)
def dataset(request):
    return request.getfixturevalue(request.param)


@pytest.mark.parametrize("estimator_class", [UDTClassifier, AveragingClassifier])
def test_model_round_trip_is_exact(dataset, estimator_class, tmp_path):
    model = estimator_class().fit(dataset)
    path = tmp_path / "model.udt"
    model.save(path)
    loaded = load_model(path)

    assert type(loaded) is estimator_class
    assert loaded.tree_.structure_signature() == model.tree_.structure_signature()
    assert loaded.tree_.n_nodes == model.tree_.n_nodes
    assert np.array_equal(loaded.predict_proba(dataset), model.predict_proba(dataset))
    assert np.array_equal(loaded.predict(dataset), model.predict(dataset))


def test_tree_round_trip_is_exact(dataset, tmp_path):
    tree = UDTClassifier(strategy="UDT", post_prune=False).fit(dataset).tree_
    path = tmp_path / "tree.udt"
    tree.save(path)
    restored = DecisionTree.load(path)
    assert restored.structure_signature() == tree.structure_signature()
    assert np.array_equal(restored.classify_dataset(dataset), tree.classify_dataset(dataset))


def test_double_round_trip_is_stable(small_uncertain, tmp_path):
    """Serialising a loaded model again produces an equivalent model."""
    model = UDTClassifier().fit(small_uncertain)
    first = tmp_path / "first.udt"
    second = tmp_path / "second.udt"
    model.save(first)
    loaded = load_model(first)
    loaded.save(second)
    again = load_model(second)
    assert again.tree_.structure_signature() == model.tree_.structure_signature()
    assert np.array_equal(
        again.predict_proba(small_uncertain), model.predict_proba(small_uncertain)
    )
