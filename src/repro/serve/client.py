"""Thin stdlib HTTP client for the serving API.

Used by the tests, the benchmark driver and the CI serving smoke job; it is
also the reference for how to talk to the server from any other language —
every call is one JSON request/response pair over plain HTTP.

    client = ServingClient("http://127.0.0.1:8000")
    client.health()                       # {"status": "ok", ...}
    client.models()                       # registry listing
    result = client.predict("iris", [[5.1, 3.5, 1.4, 0.2]])
    result.labels                         # ['setosa']
    result.probabilities                  # ndarray (1, n_classes)

Server-side failures surface as :class:`~repro.exceptions.ServingError`
carrying the HTTP status code and the server's ``error`` message; 429
rejections additionally carry the server's back-off hint as
``ServingError.retry_after`` (seconds), and ``predict(..., retries_429=N)``
turns that hint into automatic bounded retries for callers that prefer
waiting out a load spike over handling the rejection themselves.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ServingError

__all__ = ["PredictResult", "ServingClient"]


@dataclass
class PredictResult:
    """One prediction response: labels plus optional probabilities."""

    model: str
    labels: list
    classes: list
    probabilities: np.ndarray | None = field(default=None)

    @classmethod
    def from_payload(cls, payload: dict) -> "PredictResult":
        probabilities = payload.get("probabilities")
        return cls(
            model=payload["model"],
            labels=list(payload["labels"]),
            classes=list(payload["classes"]),
            probabilities=(
                np.asarray(probabilities, dtype=float) if probabilities is not None else None
            ),
        )


class ServingClient:
    """Blocking JSON-over-HTTP client for one serving process."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, path: str, body: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            retry_after = None
            try:
                error_body = json.loads(exc.read())
                message = error_body.get("error", exc.reason)
                retry_after = error_body.get("retry_after_s")
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                message = str(exc.reason)
            if retry_after is None:
                # Fall back to the whole-second header (e.g. a proxy
                # stripped the JSON body but preserved Retry-After).
                retry_after = exc.headers.get("Retry-After") if exc.headers else None
            try:
                # Coerce whatever source supplied it: a non-numeric hint
                # (misbehaving proxy) must degrade to "no hint", never
                # crash the caller's retry loop.
                retry_after = float(retry_after) if retry_after is not None else None
            except (TypeError, ValueError):
                retry_after = None
            raise ServingError(
                f"server returned {exc.code}: {message}",
                status=exc.code,
                retry_after=retry_after,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServingError(f"cannot reach {url}: {exc.reason}") from exc
        except (OSError, http.client.HTTPException) as exc:
            # Connection-level failures (resets, truncated responses) are
            # normal weather under overload; surface them as ServingError
            # (status None) like every other transport problem instead of
            # leaking raw socket exceptions to callers.
            raise ServingError(f"connection to {url} failed: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServingError(f"unexpected response payload from {url}")
        return payload

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("/metrics")

    def models(self) -> list:
        """``GET /v1/models`` — the registry listing."""
        return self._request("/v1/models")["models"]

    def model(self, name: str) -> dict:
        """``GET /v1/models/<name>`` — metadata of one model."""
        return self._request(f"/v1/models/{name}")

    def predict(
        self,
        model: str,
        rows,
        *,
        proba: bool = True,
        retries_429: int = 0,
        retry_max_wait_s: float = 2.0,
    ) -> PredictResult:
        """``POST /v1/models/<model>:predict`` for ``rows``.

        ``rows`` is any 2-D array-like (or a single flat row); ``proba``
        controls whether per-class probabilities are included in the
        response.

        When the server sheds load (429), the request is retried up to
        ``retries_429`` times, sleeping the server's ``retry_after`` hint
        (capped at ``retry_max_wait_s``) between attempts; the default of 0
        surfaces the 429 immediately.  Only 429s are retried — every other
        error status means retrying the identical request cannot help.
        """
        matrix = np.asarray(rows, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1) if matrix.size else matrix.reshape(0, 0)
        body = {"rows": matrix.tolist(), "proba": proba}
        attempts_left = max(0, int(retries_429))
        while True:
            try:
                payload = self._request(f"/v1/models/{model}:predict", body=body)
            except ServingError as exc:
                if exc.status != 429 or attempts_left <= 0:
                    raise
                attempts_left -= 1
                hint = exc.retry_after if exc.retry_after is not None else 0.1
                time.sleep(min(max(float(hint), 0.0), retry_max_wait_s))
                continue
            return PredictResult.from_payload(payload)
