"""E6 — Fig. 8: effect of the pdf sample count ``s`` on UDT-ES.

Sweeps ``s`` and records UDT-ES construction time and entropy calculations.
Expected shape: cost grows roughly linearly with ``s``.
"""

from __future__ import annotations

import pytest

from repro.eval import SensitivityExperiment, format_sensitivity_results

from helpers import BENCH_ENGINE, BENCH_SCALE, save_artifact, save_json_artifact

_SAMPLE_COUNTS = (25, 50, 75, 100)
_DATASET = "Glass"

_results = []


@pytest.mark.parametrize("n_samples", _SAMPLE_COUNTS)
def bench_fig8_effect_of_s(benchmark, n_samples):
    """Time one UDT-ES build at the given s."""
    experiment = SensitivityExperiment(_DATASET, scale=BENCH_SCALE, seed=37, engine=BENCH_ENGINE)

    def run():
        return experiment.sweep_samples(sample_counts=(n_samples,), width_fraction=0.10)[0]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _results.append(result)


def bench_fig8_report(benchmark):
    """Write the Fig. 8 artefact and check the roughly-linear growth."""
    ordered = sorted(_results, key=lambda r: r.value)
    benchmark(lambda: format_sensitivity_results(ordered))
    body = format_sensitivity_results(ordered)
    calcs = [r.entropy_calculations for r in ordered]
    body += "\n\nExpected: execution cost rises roughly linearly with s (Fig. 8)."
    save_artifact("fig8_effect_of_s", "Fig. 8 — effect of s on UDT-ES", body)
    save_json_artifact(
        "fig8",
        [
            {
                "dataset": r.dataset,
                "parameter": r.parameter,
                "value": r.value,
                "wall_seconds": r.elapsed_seconds,
                "entropy_calculations": r.entropy_calculations,
            }
            for r in ordered
        ],
        params={"width_fraction": 0.10, "seed": 37},
    )
    # Shape check: monotone non-decreasing cost with s.
    assert all(b >= a for a, b in zip(calcs, calcs[1:]))
    # Roughly linear: quadrupling s should not blow cost up by more than ~10x.
    if calcs[0] > 0:
        growth = calcs[-1] / calcs[0]
        expected = _SAMPLE_COUNTS[-1] / _SAMPLE_COUNTS[0]
        assert growth < expected * 2.5
