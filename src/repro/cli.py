"""Command-line interface for running the paper's experiments.

The CLI mirrors the experiment runners in :mod:`repro.eval.experiment` so a
user can regenerate any of the paper's artefacts without writing code::

    python -m repro example                      # Table 1 / Figs. 2-3 walkthrough
    python -m repro accuracy --dataset Iris      # Table 3 rows for one dataset
    python -m repro noise --dataset Segment      # Fig. 4 curves
    python -m repro efficiency --dataset Glass   # Figs. 6-7 per-algorithm costs
    python -m repro sensitivity --dataset Glass --parameter s   # Fig. 8 / Fig. 9
    python -m repro datasets                     # list the Table 2 stand-ins

Every experiment command accepts ``--scale`` and ``--samples`` to trade
fidelity for speed (the defaults finish in seconds).

Beyond the paper's experiments, the CLI fronts the production side of the
library::

    python -m repro train-forest data.csv forest.zip --trees 15   # bagging
    python -m repro predict model.zip data.csv --proba   # offline scoring
    python -m repro serve --models models/ --port 8000   # HTTP model server
    python -m repro router --replica http://127.0.0.1:8001 \
        --replica http://127.0.0.1:8002 --port 8080      # routing front tier
    python -m repro loadgen --url http://127.0.0.1:8000 --shape spike \
        --slo budgets.json --output BENCH_loadgen.json   # open-loop load + SLO gate
    python -m repro stream-train seed.zip --feed feed/ \
        --publish models/ --interval 2                   # continuous trainer
    python -m repro trace <trace-id> --target http://127.0.0.1:8080 \
        --target http://127.0.0.1:8001                   # join + print one trace tree

``predict`` and ``serve`` accept both single-tree and forest archives; an
archive written by a *newer* library (format version above this build's)
exits with status 2 and a message naming both versions.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Sequence

from repro import __version__
from repro.core import AveragingClassifier, UDTClassifier
from repro.core.builder import ENGINE_NAMES
from repro.data import table1_dataset
from repro.eval import (
    AccuracyExperiment,
    EfficiencyExperiment,
    NoiseModelExperiment,
    SensitivityExperiment,
    format_accuracy_results,
    format_efficiency_results,
    format_noise_model_results,
    format_sensitivity_results,
    format_table,
)
from repro.data.uci import TABLE2_DATASETS
from repro.obs.log import LOG_FORMATS, LOG_LEVELS

__all__ = ["build_parser", "main"]


def _positive_int(value: str) -> int:
    """argparse type for worker counts: an integer of at least 1."""
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Decision Trees for Uncertain Data'.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(
        sub: argparse.ArgumentParser, default_scale: float = 0.25, jobs: bool = True
    ) -> None:
        sub.add_argument("--dataset", default="Iris", help="Table 2 dataset stand-in name")
        sub.add_argument("--scale", type=float, default=default_scale,
                         help="tuple-count scale factor (1.0 = paper-size)")
        sub.add_argument("--samples", type=int, default=30,
                         help="pdf sample count s (paper uses 100)")
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument("--engine", choices=ENGINE_NAMES, default="columnar",
                         help="tree-construction engine (both build identical trees; "
                              "'columnar' is several times faster)")
        if jobs:
            sub.add_argument("--jobs", type=_positive_int, default=1,
                             help="worker count: cross-validation folds run in parallel "
                                  "processes; very large pdf stores additionally build "
                                  "per-attribute split contexts in parallel threads "
                                  "(1 = sequential)")

    def add_obs_flags(sub: argparse.ArgumentParser, *, tracing: bool = True) -> None:
        """The observability knobs shared by the serving-side commands."""
        if tracing:
            sub.add_argument("--trace-sample-rate", type=float, default=0.0,
                             metavar="RATE",
                             help="trace this fraction of requests arriving without "
                                  "an upstream trace context (0 disables minting; "
                                  "propagated sampled traces are always recorded)")
            sub.add_argument("--trace-slow-ms", type=float, default=None, metavar="MS",
                             help="also keep the trace of any request slower than "
                                  "this threshold, sampled or not")
            sub.add_argument("--trace-buffer", type=_positive_int, default=2048,
                             metavar="SPANS",
                             help="spans kept in the in-process /debug/traces ring")
            sub.add_argument("--trace-export", default=None, metavar="PATH",
                             help="append every committed span to this JSONL file")
        sub.add_argument("--log-level", choices=LOG_LEVELS, default=None,
                         help="emit structured logs at this level (unset: quiet)")
        sub.add_argument("--log-format", choices=LOG_FORMATS, default=None,
                         help="structured log encoding (default json; implies "
                              "--log-level info when only this is given)")

    subparsers.add_parser("example", help="run the Table 1 handcrafted example")
    subparsers.add_parser("datasets", help="list the Table 2 dataset stand-ins")

    accuracy = subparsers.add_parser("accuracy", help="Table 3: AVG vs UDT accuracy")
    add_common(accuracy)
    accuracy.add_argument("--widths", type=float, nargs="+", default=[0.05, 0.10],
                          help="pdf widths w (fractions of the attribute range)")
    accuracy.add_argument("--error-model", choices=("gaussian", "uniform"), default="gaussian")
    accuracy.add_argument("--folds", type=int, default=3)

    noise = subparsers.add_parser("noise", help="Fig. 4: controlled-noise study")
    add_common(noise, default_scale=0.1)
    noise.add_argument("--perturbations", type=float, nargs="+", default=[0.0, 0.05, 0.10])
    noise.add_argument("--widths", type=float, nargs="+", default=[0.0, 0.05, 0.10, 0.20])

    efficiency = subparsers.add_parser("efficiency", help="Figs. 6-7: per-algorithm cost")
    add_common(efficiency)
    efficiency.add_argument("--width", type=float, default=0.10, help="pdf width w")

    # The sensitivity sweeps time individual sequential builds, so a worker
    # count would either be ignored or corrupt the measurement — no --jobs.
    sensitivity = subparsers.add_parser("sensitivity", help="Figs. 8-9: effect of s or w")
    add_common(sensitivity, jobs=False)
    sensitivity.add_argument("--parameter", choices=("s", "w"), default="s")

    train_forest = subparsers.add_parser(
        "train-forest",
        help="train a bagged forest of uncertain trees on a CSV and save it",
    )
    train_forest.add_argument(
        "data",
        help="CSV of training rows: feature columns then the class label in "
             "the last column (a non-numeric first row is a header and is "
             "skipped)",
    )
    train_forest.add_argument("model", help="output path of the model .zip archive")
    train_forest.add_argument("--kind", choices=("udt", "avg"), default="udt",
                              help="member trees: distribution-based (udt) or "
                                   "the mean-collapsing baseline (avg)")
    train_forest.add_argument("--trees", type=_positive_int, default=11,
                              help="ensemble size (number of member trees)")
    train_forest.add_argument("--width", type=float, default=0.1,
                              help="Gaussian pdf width w as a fraction of each "
                                   "attribute's range (0 = certain point data)")
    train_forest.add_argument("--samples", type=int, default=30,
                              help="pdf sample count s (paper uses 100)")
    train_forest.add_argument("--max-depth", type=int, default=None,
                              help="depth bound of every member tree")
    train_forest.add_argument("--feature-subsample", default=None,
                              help="features per member: 'sqrt', a fraction in "
                                   "(0, 1], or an integer count (default: all)")
    train_forest.add_argument("--no-bootstrap", action="store_true",
                              help="train every member on the full dataset "
                                   "instead of a bootstrap resample")
    train_forest.add_argument("--seed", type=int, default=0,
                              help="random_state: same seed, same forest")
    train_forest.add_argument("--jobs", type=_positive_int, default=1,
                              help="worker processes for member training "
                                   "(results are identical to --jobs 1)")
    train_forest.add_argument("--engine", choices=ENGINE_NAMES, default="columnar",
                              help="tree-construction engine for the members")
    train_forest.add_argument("--format-version", type=int, default=None,
                              choices=(2, 3), metavar="{2,3}",
                              help="persistence format of the saved archive: "
                                   "3 (default) stores an mmap-able array "
                                   "block, 2 writes arrays.npz for older "
                                   "deployments")

    predict = subparsers.add_parser(
        "predict", help="offline scoring: apply a saved model to a CSV of rows"
    )
    predict.add_argument("model", help="path to a model .zip saved with model.save()")
    predict.add_argument("data", help="CSV of feature rows (a non-numeric first row "
                                      "is treated as a header and skipped)")
    predict.add_argument("--proba", action="store_true",
                         help="emit per-class probabilities besides the labels")
    predict.add_argument("--output", default=None,
                         help="write the CSV result here instead of stdout")

    serve = subparsers.add_parser(
        "serve", help="HTTP model server with micro-batched inference"
    )
    serve.add_argument("--models", required=True,
                       help="directory of model .zip archives (file stem = model name)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="listening port (0 binds an ephemeral port)")
    serve.add_argument("--max-batch", type=_positive_int, default=64,
                       help="rows per coalesced predict_batch call")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="how long the coalescer lingers for more requests")
    serve.add_argument("--max-queue-rows", type=int, default=None,
                       help="admission-control bound on queued rows; beyond it new "
                            "requests are rejected with HTTP 429 + Retry-After "
                            "(default: 8 x max-batch)")
    serve.add_argument("--max-queue-rows-per-model", type=int, default=None,
                       help="per-model admission quota on queued rows, so one "
                            "hot model cannot starve the others' admission "
                            "budget (default: half of max-queue-rows)")
    serve.add_argument("--request-timeout", type=float, default=30.0, metavar="SECONDS",
                       help="per-request inference deadline; a request that "
                            "exceeds it is answered 504 and, if still queued, "
                            "cancelled so its rows are never classified")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="shard coalesced batches across N model-serving "
                            "processes (1 = the in-process engine; outputs are "
                            "bit-identical either way)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU prediction-cache entries per model (0 disables)")
    serve.add_argument("--cache-decimals", type=int, default=None,
                       help="round cache keys to this many decimals instead of "
                            "exact feature bytes (absorbs sub-ulp client jitter)")
    serve.add_argument("--predict-engine", choices=("columnar", "tuples"),
                       default="columnar",
                       help="batch classification path ('tuples' walks the tree "
                            "per row; only useful for benchmarking)")
    serve.add_argument("--preload", action="store_true",
                       help="load every model at startup instead of on first request")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    add_obs_flags(serve)

    router = subparsers.add_parser(
        "router",
        help="routing front tier over serving replicas: health checks, "
             "consistent-hash model routing, registry sync, drain-on-deploy",
    )
    router.add_argument("--replica", action="append", required=True, metavar="URL",
                        help="base URL of one serving replica (repeatable)")
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=8080,
                        help="listening port (0 binds an ephemeral port)")
    router.add_argument("--health-interval", type=float, default=2.0, metavar="SECONDS",
                        help="period of the /healthz poll over the replicas")
    router.add_argument("--health-timeout", type=float, default=1.0, metavar="SECONDS",
                        help="per-probe timeout")
    router.add_argument("--up-after", type=_positive_int, default=2,
                        help="consecutive successful probes before a down "
                             "replica rejoins the ring")
    router.add_argument("--down-after", type=_positive_int, default=2,
                        help="consecutive failed probes before a healthy "
                             "replica leaves the ring")
    router.add_argument("--fanout-trees", type=int, default=32, metavar="N",
                        help="forest models with at least N member trees are "
                             "sharded across replicas and reduced at the "
                             "router (results stay bit-identical)")
    router.add_argument("--fanout-shards", type=int, default=0, metavar="N",
                        help="shard a fanned-out forest across at most N "
                             "replicas (0 = every in-service replica)")
    router.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                        help="per-request timeout on upstream replica calls")
    router.add_argument("--sync-source", default=None, metavar="DIR",
                        help="source-of-truth directory of model archives to "
                             "replicate into each --sync-dest")
    router.add_argument("--sync-dest", action="append", default=None, metavar="DIR",
                        help="one replica's model directory to keep in sync "
                             "(repeatable; requires --sync-source)")
    router.add_argument("--sync-interval", type=float, default=10.0, metavar="SECONDS",
                        help="period of the background registry sync loop "
                             "(0 syncs once at startup only)")
    router.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    add_obs_flags(router)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="open-loop load generation against a running serve instance, "
             "with optional SLO gating",
    )
    loadgen.add_argument("--url", default="http://127.0.0.1:8000",
                         help="base URL of the serving instance to drive")
    loadgen.add_argument("--shape", action="append", default=None, metavar="NAME",
                         help="traffic shape to run (repeatable; default: steady); "
                              "one of: steady, spike, diurnal, hotkey, drift")
    loadgen.add_argument("--rate", type=float, default=30.0,
                         help="base arrival rate in requests/second (shapes "
                              "multiply it over time)")
    loadgen.add_argument("--duration", type=float, default=5.0, metavar="SECONDS",
                         help="length of each shape's run")
    loadgen.add_argument("--users", type=_positive_int, default=8,
                         help="concurrent user threads executing the schedule")
    loadgen.add_argument("--spawn-rate", type=float, default=None, metavar="PER_SECOND",
                         help="ramp users in at N users/second instead of all at once")
    loadgen.add_argument("--think-time", type=float, default=0.0, metavar="SECONDS",
                         help="mean exponential pause per user between requests")
    loadgen.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                         help="per-request client timeout")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="fixes the arrival schedule, model picks and rows")
    loadgen.add_argument("--model", action="append", default=None, metavar="NAME",
                         help="restrict traffic to these models (repeatable; "
                              "default: every model the server lists)")
    loadgen.add_argument("--slo", default=None, metavar="BUDGETS_JSON",
                         help="per-shape SLO budgets file; any violated budget "
                              "makes the command exit 1")
    loadgen.add_argument("--output", default=None, metavar="PATH",
                         help="write the BENCH_loadgen.json artifact here")
    loadgen.add_argument("--trace-sample-rate", type=float, default=0.0, metavar="RATE",
                         help="mint a sampled trace id on this fraction of requests; "
                              "the ids land in the report for joining against the "
                              "servers' /debug/traces buffers")
    add_obs_flags(loadgen, tracing=False)

    stream_train = subparsers.add_parser(
        "stream-train",
        help="continuous trainer: tail a feed directory of labelled rows, "
             "apply incremental updates to a saved model, and atomically "
             "publish fresh snapshots into a serving model directory",
    )
    stream_train.add_argument(
        "model",
        help="seed model .zip archive to update incrementally (single tree "
             "or forest; must already be fitted)",
    )
    stream_train.add_argument("--feed", required=True, metavar="DIR",
                              help="feed directory of append-only *.csv "
                                   "(features..., label) or *.jsonl "
                                   "({\"features\": [...], \"label\": ...}) files")
    stream_train.add_argument("--publish", required=True, metavar="DIR",
                              help="model directory to publish snapshots into — "
                                   "point it at a replica's --models dir (or a "
                                   "router's --sync-source) for hot reload")
    stream_train.add_argument("--name", default=None,
                              help="published model name (default: the seed "
                                   "archive's file stem)")
    stream_train.add_argument("--interval", type=float, default=2.0,
                              metavar="SECONDS",
                              help="cadence of the poll/update/publish cycle")
    stream_train.add_argument("--iterations", type=int, default=0, metavar="N",
                              help="stop after N cycles (0 = run until "
                                   "interrupted)")
    stream_train.add_argument("--min-batch", type=_positive_int, default=1,
                              help="buffer feed rows until at least this many "
                                   "are pending before applying an update")
    stream_train.add_argument("--resplit-gain", type=float, default=0.01,
                              metavar="GAIN",
                              help="entropy-gain threshold above which a leaf's "
                                   "accumulated tuples trigger a local re-split")
    stream_train.add_argument("--resplit-min-weight", type=float, default=8.0,
                              metavar="WEIGHT",
                              help="minimum accumulated tuple weight before a "
                                   "leaf is considered for re-splitting")
    stream_train.add_argument("--refresh-every", type=int, default=0, metavar="N",
                              help="after every N applied updates, retrain the "
                                   "worst-scoring forest members on the recent "
                                   "window (0 disables; forests only)")
    stream_train.add_argument("--refresh-fraction", type=float, default=0.25,
                              help="fraction of forest members each refresh "
                                   "retrains (the worst-scoring ones)")
    stream_train.add_argument("--reservoir", type=_positive_int, default=4096,
                              metavar="ROWS",
                              help="recent-window tuples kept for member "
                                   "refreshes (forests only)")
    stream_train.add_argument("--format-version", type=int, default=None,
                              choices=(2, 3), metavar="{2,3}",
                              help="persistence format of published snapshots")
    add_obs_flags(stream_train)

    trace = subparsers.add_parser(
        "trace",
        help="fetch /debug/traces from routers/replicas, join the buffers on "
             "trace id, and pretty-print span trees",
    )
    trace.add_argument("trace_id", nargs="?", default=None,
                       help="print this trace's joined span tree "
                            "(omit to list recent traces instead)")
    trace.add_argument("--target", action="append", required=True, metavar="URL",
                       help="base URL of one router or replica whose "
                            "/debug/traces to fetch (repeatable)")
    trace.add_argument("--model", default=None,
                       help="only traces touching this model")
    trace.add_argument("--min-ms", type=float, default=None, metavar="MS",
                       help="only traces at least this long")
    trace.add_argument("--limit", type=_positive_int, default=20,
                       help="most recent traces to list per target")
    trace.add_argument("--timeout", type=float, default=5.0, metavar="SECONDS",
                       help="per-target fetch timeout")

    return parser


def _read_csv_rows(path: str) -> list:
    """Feature rows of a CSV file; a non-numeric first row is a header."""
    with open(path, newline="") as handle:
        rows = [row for row in csv.reader(handle) if row]
    if not rows:
        return []

    def numeric(row: list) -> bool:
        try:
            [float(cell) for cell in row]
            return True
        except ValueError:
            return False

    if not numeric(rows[0]):
        rows = rows[1:]
    return [[float(cell) for cell in row] for row in rows]


def _parse_feature_subsample(value):
    """CLI encoding of the forest's feature_subsample knob.

    Integer literals ("3") are counts; anything with a decimal point
    ("1.0", "0.5") stays a fraction — so "--feature-subsample 1.0" means
    all features, exactly like feature_subsample=1.0 in the Python API.
    """
    if value is None or value == "sqrt":
        return value
    try:
        return int(value)
    except ValueError:
        return float(value)


def _read_labelled_csv(path: str) -> tuple:
    """``(X, y)`` from a CSV whose last column is the class label.

    A first row whose feature cells are not all numeric is treated as a
    header and skipped; labels are kept as strings.
    """
    with open(path, newline="") as handle:
        rows = [row for row in csv.reader(handle) if row]
    if not rows:
        return [], []

    def numeric_features(row: list) -> bool:
        try:
            [float(cell) for cell in row[:-1]]
            return True
        except ValueError:
            return False

    if not numeric_features(rows[0]):
        rows = rows[1:]
    if any(len(row) < 2 for row in rows):
        raise ValueError("every row needs at least one feature and a label")
    X = [[float(cell) for cell in row[:-1]] for row in rows]
    y = [row[-1] for row in rows]
    return X, y


def _run_train_forest(args) -> int:
    import numpy as np

    from repro.api.spec import first_non_finite_row, gaussian, point
    from repro.ensemble import AveragingForestClassifier, UDTForestClassifier
    from repro.exceptions import ReproError

    try:
        X, y = _read_labelled_csv(args.data)
    except ValueError as exc:
        print(f"error: cannot read {args.data}: {exc}", file=sys.stderr)
        return 2
    if not X:
        print(f"error: {args.data} contains no training rows", file=sys.stderr)
        return 2
    matrix = np.asarray(X, dtype=float)
    bad_row = first_non_finite_row(matrix)
    if bad_row is not None:
        print(
            f"error: {args.data} contains a non-finite feature value (NaN or "
            f"Inf) in data row {bad_row + 1}; clean the input before training",
            file=sys.stderr,
        )
        return 2
    forest_class = UDTForestClassifier if args.kind == "udt" else AveragingForestClassifier
    spec = gaussian(w=args.width, s=args.samples) if args.width > 0 else point()
    try:
        model = forest_class(
            n_estimators=args.trees,
            spec=spec,
            max_depth=args.max_depth,
            engine=args.engine,
            n_jobs=args.jobs,
            random_state=args.seed,
            bootstrap=not args.no_bootstrap,
            feature_subsample=_parse_feature_subsample(args.feature_subsample),
        ).fit(matrix, y)
        model.save(args.model, format_version=args.format_version)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"trained {args.kind} forest of {model.n_trees_} trees on "
        f"{len(matrix)} rows x {model.n_features_in_} features "
        f"(classes: {', '.join(str(label) for label in model.classes_)}); "
        f"saved to {args.model}"
    )
    return 0


def _run_predict(args) -> int:
    import numpy as np

    from repro.api import load_model
    from repro.api.spec import first_non_finite_row
    from repro.exceptions import PersistenceError

    try:
        model = load_model(args.model)
    except PersistenceError as exc:
        # Covers corrupt archives and — via FormatVersionError's message,
        # which names the archive's version and the library version
        # required — models written by a newer library.  Exit 2, no
        # traceback.
        print(f"error: cannot load {args.model}: {exc}", file=sys.stderr)
        return 2
    try:
        rows = _read_csv_rows(args.data)
    except ValueError as exc:
        print(f"error: {args.data} contains a non-numeric cell: {exc}", file=sys.stderr)
        return 2
    classes = [
        label.item() if hasattr(label, "item") else label for label in model.classes_
    ]
    n_features = len(model.feature_names_in_)
    widths = {len(row) for row in rows}
    if widths and widths != {n_features}:
        print(
            f"error: {args.data} has rows of {sorted(widths)} columns but the "
            f"model expects exactly {n_features} features per row",
            file=sys.stderr,
        )
        return 2
    matrix = np.asarray(rows, dtype=float).reshape(-1, n_features)
    bad_row = first_non_finite_row(matrix)
    if bad_row is not None:
        # Same rule the server enforces before enqueueing: NaN/Inf features
        # would silently turn into garbage probabilities.
        print(
            f"error: {args.data} contains a non-finite feature value (NaN or "
            f"Inf) in data row {bad_row + 1}; clean the input before scoring",
            file=sys.stderr,
        )
        return 2
    probabilities = model.predict_proba(matrix)
    labels = [classes[index] for index in np.argmax(probabilities, axis=1)]

    handle = open(args.output, "w", newline="") if args.output else sys.stdout
    try:
        writer = csv.writer(handle)
        if args.proba:
            writer.writerow(["label"] + [f"p_{label}" for label in classes])
            for label, distribution in zip(labels, probabilities):
                writer.writerow([label] + [repr(float(p)) for p in distribution])
        else:
            writer.writerow(["label"])
            for label in labels:
                writer.writerow([label])
    finally:
        if args.output:
            handle.close()
    return 0


def _check_archive_versions(models_dir) -> "str | None":
    """Error message if any archive needs a newer library, else ``None``.

    Runs before the server binds: serving a directory with an archive this
    build cannot ever load should fail loudly at startup (exit 2, naming
    the archive and both versions), not 500 on its first request.
    """
    from pathlib import Path

    from repro.api.persistence import read_model_metadata
    from repro.exceptions import FormatVersionError, PersistenceError

    directory = Path(models_dir)
    if not directory.is_dir():
        return None  # create_server reports missing directories itself
    for path in sorted(directory.glob("*.zip")):
        try:
            read_model_metadata(path)
        except FormatVersionError as exc:
            return f"cannot serve {path.name}: {exc}"
        except PersistenceError:
            # Other damage (corrupt zip, bad JSON) keeps the current
            # behaviour: the registry lists the error and healthy
            # neighbours still serve.
            continue
    return None


def _configure_obs_logging(args) -> None:
    """Turn structured logging on when either ``--log-*`` flag was given."""
    if args.log_level is None and args.log_format is None:
        return
    from repro.obs.log import configure_logging

    configure_logging(args.log_level or "info", args.log_format or "json")


def _shutdown_on_sigterm() -> None:
    """Route SIGTERM through the KeyboardInterrupt shutdown path.

    `kill <pid>` is the documented way to stop a background server, but the
    default SIGTERM action skips ``finally`` blocks and finalizers — which
    would leak the shared-memory segments the serving registry publishes
    for its worker pool.  Raising KeyboardInterrupt instead lets
    ``server.close()`` unlink them exactly like Ctrl-C does.
    """
    import signal

    def _handler(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _handler)
    except ValueError:
        pass  # not the main thread (embedded use); keep the default action


def _run_serve(args) -> int:
    from repro.exceptions import ServingError
    from repro.serve import create_server

    _configure_obs_logging(args)
    version_error = _check_archive_versions(args.models)
    if version_error is not None:
        print(f"error: {version_error}", file=sys.stderr)
        return 2
    try:
        server = create_server(
            args.models,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue_rows=args.max_queue_rows,
            max_queue_rows_per_model=args.max_queue_rows_per_model,
            cache_size=args.cache_size,
            cache_decimals=args.cache_decimals,
            predict_engine=args.predict_engine,
            request_timeout_s=args.request_timeout,
            workers=args.workers,
            preload=args.preload,
            verbose=args.verbose,
            trace_sample_rate=args.trace_sample_rate,
            trace_slow_ms=args.trace_slow_ms,
            trace_buffer=args.trace_buffer,
            trace_export=args.trace_export,
        )
    except ServingError as exc:
        # Bad knob values (request-timeout <= 0, negative cache sizes, a
        # missing model directory, ...) must fail loudly at startup, not
        # start a server that 504s or crashes on its first request.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    names = server.registry.names()
    print(f"serving {len(names)} model(s) on {server.url}", flush=True)
    for name in names:
        print(f"  - {name}", flush=True)
    _shutdown_on_sigterm()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _run_router(args) -> int:
    from repro.exceptions import ServingError
    from repro.router import create_router

    _configure_obs_logging(args)
    if args.sync_dest and not args.sync_source:
        print("error: --sync-dest requires --sync-source", file=sys.stderr)
        return 2
    try:
        server = create_router(
            args.replica,
            host=args.host,
            port=args.port,
            health_interval_s=args.health_interval,
            health_timeout_s=args.health_timeout,
            up_after=args.up_after,
            down_after=args.down_after,
            fanout_trees=args.fanout_trees,
            fanout_shards=args.fanout_shards,
            upstream_timeout_s=args.timeout,
            sync_source=args.sync_source,
            sync_dests=args.sync_dest or (),
            sync_interval_s=args.sync_interval,
            verbose=args.verbose,
            trace_sample_rate=args.trace_sample_rate,
            trace_slow_ms=args.trace_slow_ms,
            trace_buffer=args.trace_buffer,
            trace_export=args.trace_export,
        )
    except (ServingError, ValueError) as exc:
        # Bad knob values and an unreadable sync source must fail loudly at
        # startup, exactly like `repro serve` does.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    topology = server.router.describe()
    in_service = topology["ring_size"]
    print(
        f"routing {len(args.replica)} replica(s) ({in_service} in service) "
        f"on {server.url}",
        flush=True,
    )
    for state in topology["replicas"]:
        verdict = "up" if state["healthy"] else "down"
        print(f"  - {state['url']} [{verdict}]", flush=True)
    _shutdown_on_sigterm()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _run_loadgen(args) -> int:
    from repro.exceptions import ReproError, ServingError
    from repro.loadgen import (
        SHAPE_NAMES,
        LoadGenerator,
        check_slo,
        load_budgets,
        make_shape,
        summarize,
        write_loadgen_report,
    )

    _configure_obs_logging(args)
    shape_names = args.shape or ["steady"]
    try:
        shapes = [make_shape(name) for name in shape_names]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    budgets = None
    if args.slo is not None:
        try:
            budgets = load_budgets(args.slo)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        unknown = set(budgets) - set(SHAPE_NAMES) - {"*"}
        if unknown:
            print(f"error: SLO budgets name unknown shape(s) {sorted(unknown)}",
                  file=sys.stderr)
            return 2
    if args.rate <= 0 or args.duration <= 0:
        print("error: --rate and --duration must be positive", file=sys.stderr)
        return 2

    try:
        generator = LoadGenerator(
            args.url,
            users=args.users,
            spawn_rate=args.spawn_rate,
            think_time_s=args.think_time,
            timeout_s=args.timeout,
            seed=args.seed,
            trace_sample_rate=args.trace_sample_rate,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    records = []
    for shape in shapes:
        print(f"running shape {shape.name!r}: rate={args.rate:g} rps, "
              f"duration={args.duration:g}s, users={args.users}", flush=True)
        try:
            run = generator.run(
                shape, rate=args.rate, duration_s=args.duration, models=args.model
            )
        except ServingError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        records.append(summarize(run))

    rows = [
        (
            record["shape"],
            f"{record['offered_rate']:.1f}",
            f"{record['achieved_rate']:.1f}",
            f"{record['latency_ms']['p50']:.1f}",
            f"{record['latency_ms']['p95']:.1f}",
            f"{record['latency_ms']['p99']:.1f}",
            f"{record['rate_429']:.3f}",
            f"{record['error_rate']:.3f}",
        )
        for record in records
    ]
    print(format_table(
        ("shape", "offered/s", "achieved/s", "p50 ms", "p95 ms", "p99 ms",
         "429 rate", "error rate"),
        rows,
    ))

    n_sampled = sum(record["traces"]["n_sampled"] for record in records)
    if n_sampled:
        print(f"sampled {n_sampled} trace id(s); worth chasing:", flush=True)
        for record in records:
            for sample in record["traces"]["samples"][:3]:
                print(
                    f"  - {sample['trace_id']}  shape={record['shape']} "
                    f"model={sample['model']} status={sample['status']} "
                    f"{sample['latency_ms']:.1f} ms",
                    flush=True,
                )

    if args.output is not None:
        path = write_loadgen_report(
            records,
            args.output,
            params={
                "url": args.url,
                "rate": args.rate,
                "duration_s": args.duration,
                "users": args.users,
                "spawn_rate": args.spawn_rate,
                "think_time_s": args.think_time,
                "seed": args.seed,
                "shapes": shape_names,
                "trace_sample_rate": args.trace_sample_rate,
            },
        )
        print(f"wrote {path}", flush=True)

    if budgets is not None:
        violations = check_slo(records, budgets)
        if violations:
            for violation in violations:
                print(f"SLO VIOLATION: {violation}", file=sys.stderr)
            return 1
        print(f"SLO check passed for {len(records)} shape(s)", flush=True)
    return 0


def _run_stream_train(args) -> int:
    from pathlib import Path

    from repro.api import load_model
    from repro.exceptions import PersistenceError, ReproError
    from repro.stream import ContinuousTrainer, FeedTailer

    _configure_obs_logging(args)
    try:
        model = load_model(args.model)
    except PersistenceError as exc:
        print(f"error: cannot load {args.model}: {exc}", file=sys.stderr)
        return 2

    # Trainer cycles are always-sampled spans; without an export sink (the
    # trainer runs no HTTP surface to expose /debug/traces) tracing would
    # buffer invisibly, so a Tracer is only built when --trace-export asks
    # for one.
    tracer = None
    if args.trace_export is not None:
        from repro.obs import Tracer

        tracer = Tracer(
            "stream-train",
            slow_ms=args.trace_slow_ms,
            buffer_size=args.trace_buffer,
            export_path=args.trace_export,
        )

    name = args.name or Path(args.model).stem
    try:
        trainer = ContinuousTrainer(
            model,
            FeedTailer(args.feed),
            args.publish,
            name,
            interval_s=args.interval,
            min_batch=args.min_batch,
            refresh_every=args.refresh_every,
            refresh_fraction=args.refresh_fraction,
            resplit_gain=args.resplit_gain,
            resplit_min_weight=args.resplit_min_weight,
            reservoir_size=args.reservoir,
            format_version=args.format_version,
            tracer=tracer,
        )
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(
        f"stream-training {name!r}: feed={args.feed} publish={args.publish} "
        f"interval={args.interval:g}s", flush=True
    )

    def on_cycle(result) -> None:
        state = "published" if result.published else "idle"
        print(
            f"cycle {result.cycle}: rows={result.rows} "
            f"updated={'yes' if result.updated else 'no'} "
            f"refreshed={result.refreshed or '-'} {state} "
            f"gen={result.generation} ({result.duration_s * 1000.0:.1f} ms)",
            flush=True,
        )

    _shutdown_on_sigterm()
    try:
        trainer.run(
            iterations=None if args.iterations == 0 else args.iterations,
            on_cycle=on_cycle,
        )
    except KeyboardInterrupt:
        pass
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = trainer.describe()
    print(
        f"stopped after {summary['cycles']} cycle(s): "
        f"{summary['rows_ingested']} row(s) ingested, "
        f"{summary['updates_applied']} update(s), "
        f"{summary['publications']} snapshot(s) published", flush=True
    )
    return 0


def _run_trace(args) -> int:
    """Join ``/debug/traces`` across targets; list traces or print one tree."""
    import json
    import time as time_module
    import urllib.error
    import urllib.parse
    import urllib.request

    from repro.obs.trace import format_trace_tree

    params: "dict[str, str]" = {"limit": str(args.limit)}
    if args.trace_id:
        params["trace_id"] = args.trace_id
    if args.model:
        params["model"] = args.model
    if args.min_ms is not None:
        params["min_ms"] = str(args.min_ms)
    query = urllib.parse.urlencode(params)

    merged: "dict[str, dict]" = {}
    reached = 0
    for target in args.target:
        url = f"{target.rstrip('/')}/debug/traces?{query}"
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"warning: cannot fetch {url}: {exc}", file=sys.stderr)
            continue
        reached += 1
        for entry in payload.get("traces", []):
            known = merged.get(entry["trace_id"])
            if known is None:
                merged[entry["trace_id"]] = {
                    "trace_id": entry["trace_id"],
                    "start_s": entry["start_s"],
                    "duration_ms": entry["duration_ms"],
                    "spans": {
                        span["span_id"]: span for span in entry["spans"]
                    },
                }
                continue
            known["start_s"] = min(known["start_s"], entry["start_s"])
            known["duration_ms"] = max(known["duration_ms"], entry["duration_ms"])
            for span in entry["spans"]:
                known["spans"].setdefault(span["span_id"], span)
    if reached == 0:
        print("error: no target answered /debug/traces", file=sys.stderr)
        return 2

    if args.trace_id:
        entry = merged.get(args.trace_id)
        if entry is None:
            print(
                f"error: trace {args.trace_id!r} not found on any target "
                f"(buffers are bounded rings — it may have been evicted)",
                file=sys.stderr,
            )
            return 1
        print(f"trace {entry['trace_id']}  ({len(entry['spans'])} spans)")
        print(format_trace_tree(entry["spans"].values()))
        return 0

    if not merged:
        print("no traces buffered on the targets (is tracing sampled on?)")
        return 0
    entries = sorted(merged.values(), key=lambda e: e["start_s"], reverse=True)
    rows = []
    for entry in entries[: args.limit]:
        spans = list(entry["spans"].values())
        services = sorted({span.get("service", "?") for span in spans})
        models = sorted(
            {span["model"] for span in spans if span.get("model")}
        )
        started = time_module.strftime(
            "%H:%M:%S", time_module.localtime(entry["start_s"])
        )
        rows.append(
            (
                entry["trace_id"],
                started,
                f"{entry['duration_ms']:.1f}",
                len(spans),
                ",".join(services),
                ",".join(models) or "-",
            )
        )
    print(format_table(
        ("trace id", "start", "ms", "spans", "services", "models"), rows
    ))
    return 0


def _run_example() -> None:
    data = table1_dataset()
    avg = AveragingClassifier().fit(data)
    udt = UDTClassifier(strategy="UDT", post_prune=False, min_split_weight=1e-6).fit(data)
    print("Table 1 example — accuracy on the six training tuples")
    print(format_table(
        ("classifier", "accuracy", "paper"),
        [("AVG", f"{avg.score(data):.4f}", "2/3"), ("UDT", f"{udt.score(data):.4f}", "1.0")],
    ))
    print("\nDistribution-based tree:")
    print(udt.tree_.to_text())


def _run_datasets() -> None:
    rows = [
        (
            spec.name,
            spec.n_training,
            spec.n_test if spec.has_test_split else "-",
            spec.n_attributes,
            spec.n_classes,
            "raw samples" if spec.repeated_measurements else
            ("integer" if spec.integer_domain else "real"),
        )
        for spec in TABLE2_DATASETS
    ]
    print(format_table(("dataset", "train", "test", "attributes", "classes", "domain"), rows))


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro``."""
    args = build_parser().parse_args(argv)

    if args.command == "example":
        _run_example()
    elif args.command == "datasets":
        _run_datasets()
    elif args.command == "train-forest":
        return _run_train_forest(args)
    elif args.command == "predict":
        return _run_predict(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "router":
        return _run_router(args)
    elif args.command == "loadgen":
        return _run_loadgen(args)
    elif args.command == "stream-train":
        return _run_stream_train(args)
    elif args.command == "trace":
        return _run_trace(args)
    elif args.command == "accuracy":
        experiment = AccuracyExperiment(
            args.dataset, scale=args.scale, n_samples=args.samples,
            n_folds=args.folds, seed=args.seed, n_jobs=args.jobs, engine=args.engine,
        )
        results = experiment.run(
            width_fractions=tuple(args.widths), error_models=(args.error_model,)
        )
        print(format_accuracy_results(results))
    elif args.command == "noise":
        experiment = NoiseModelExperiment(
            args.dataset, scale=args.scale, n_samples=args.samples, n_folds=3,
            seed=args.seed, n_jobs=args.jobs, engine=args.engine,
        )
        results = experiment.run(
            perturbation_fractions=tuple(args.perturbations),
            width_fractions=tuple(args.widths),
        )
        print(format_noise_model_results(results))
    elif args.command == "efficiency":
        experiment = EfficiencyExperiment(
            args.dataset, scale=args.scale, n_samples=args.samples,
            width_fraction=args.width, seed=args.seed, n_jobs=args.jobs,
            engine=args.engine,
        )
        print(format_efficiency_results(experiment.run()))
    elif args.command == "sensitivity":
        experiment = SensitivityExperiment(
            args.dataset, scale=args.scale, seed=args.seed, engine=args.engine,
        )
        if args.parameter == "s":
            results = experiment.sweep_samples(sample_counts=(25, 50, 75, 100))
        else:
            results = experiment.sweep_widths(width_fractions=(0.02, 0.05, 0.10, 0.20),
                                              n_samples=args.samples)
        print(format_sensitivity_results(results))
    return 0
