"""Router HTTP surface: 503/429 semantics, aggregation, drain, metrics."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.exceptions import ServingError
from repro.router import create_router
from repro.serve import ServingClient


def post_json(url: str, body: dict):
    """``(status, headers, payload)`` of one POST, errors included."""
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


class _Always429Handler(BaseHTTPRequestHandler):
    """A stub replica: healthy, but sheds every predict with 429."""

    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002
        pass

    def _reply(self, status, payload, headers=()):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in headers:
            self.send_header(key, value)
        if status >= 400:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        if self.path.rstrip("/") == "/healthz":
            self._reply(200, {"status": "ok"})
        elif self.path.rstrip("/") == "/v1/models":
            self._reply(200, {"models": [{"name": "busy", "n_features": 3}]})
        else:
            self._reply(404, {"error": "nope"})

    def do_POST(self):
        self.rfile.read(int(self.headers.get("Content-Length") or 0))
        self._reply(
            429,
            {"error": "shedding", "retry_after_s": 0.25},
            headers=[("Retry-After", "1")],
        )


@pytest.fixture
def shedding_replica():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _Always429Handler)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()


def test_no_healthy_replica_is_503_with_retry_after():
    # Port 1 refuses connections, so the synchronous first sweep marks the
    # only replica down and the ring starts empty.
    server = create_router(
        ["http://127.0.0.1:1"], port=0, health_interval_s=0.5, down_after=1
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        status, headers, payload = post_json(
            f"{server.url}/v1/models/demo:predict", {"rows": [[1.0, 2.0, 3.0]]}
        )
        assert status == 503
        assert "no replica is in service" in payload["error"]
        assert payload["retry_after_s"] == pytest.approx(0.5)
        assert int(headers["Retry-After"]) >= 1
        # The aggregated listing degrades the same way.
        with pytest.raises(ServingError) as listing:
            ServingClient(server.url).models()
        assert listing.value.status == 503
        health = ServingClient(server.url).health()
        assert health["status"] == "degraded"
        assert health["ring_size"] == 0
    finally:
        server.close()


def test_upstream_429_propagates_with_its_retry_hint(shedding_replica):
    server = create_router([shedding_replica], port=0, health_interval_s=0.5)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        status, headers, payload = post_json(
            f"{server.url}/v1/models/busy:predict", {"rows": [[1.0, 2.0, 3.0]]}
        )
        assert status == 429
        assert payload["retry_after_s"] == pytest.approx(0.25)
        assert headers["Retry-After"] == "1"
        snapshot = ServingClient(server.url).metrics()
        assert snapshot["upstream_429"] == 1
        assert snapshot["errors"] == {"429": 1}
    finally:
        server.close()


def test_models_aggregates_across_replicas(router_server):
    client = ServingClient(router_server.url)
    names = [info.name for info in client.models()]
    assert names == ["forest", "tree"]  # deduplicated across both replicas
    info = client.model("forest")
    assert info.model_kind == "forest"
    assert info.n_trees == 6


def test_healthz_and_admin_replicas_report_topology(router_server, replica_servers):
    health = ServingClient(router_server.url).health()
    assert health["status"] == "ok"
    assert health["ring_size"] == 2
    admin = json.loads(
        urllib.request.urlopen(f"{router_server.url}/admin/replicas", timeout=10).read()
    )
    described = {entry["url"]: entry for entry in admin["replicas"]}
    assert set(described) == {replica.url for replica in replica_servers}
    assert all(entry["healthy"] for entry in described.values())
    assert all(entry["in_ring"] for entry in described.values())
    assert all(entry["inflight"] == 0 for entry in described.values())


def test_drain_endpoint_removes_then_undrain_restores(router_server, replica_servers):
    target = replica_servers[0].url
    status, _, payload = post_json(
        f"{router_server.url}/admin/drain", {"replica": target, "timeout_s": 5}
    )
    assert status == 200
    assert payload["drained"] is True
    assert payload["inflight"] == 0
    assert router_server.router.describe()["ring_members"] == [replica_servers[1].url]

    status, _, payload = post_json(
        f"{router_server.url}/admin/undrain", {"replica": target}
    )
    assert status == 200
    assert payload["in_service"] is True
    assert set(router_server.router.describe()["ring_members"]) == {
        replica.url for replica in replica_servers
    }


def test_drain_validation(router_server):
    status, _, payload = post_json(f"{router_server.url}/admin/drain", {})
    assert status == 400
    status, _, payload = post_json(
        f"{router_server.url}/admin/drain", {"replica": "http://unknown:1"}
    )
    assert status == 404
    assert "unknown replica" in payload["error"]
    status, _, _ = post_json(
        f"{router_server.url}/admin/drain", {"replica": "x", "timeout_s": -1}
    )
    assert status == 400


def test_metrics_families_and_content_negotiation(router_server, router_rows):
    client = ServingClient(router_server.url)
    client.predict("forest", router_rows)
    client.predict("tree", router_rows[:3])
    snapshot = client.metrics()
    assert snapshot["ring_size"] == 2
    assert set(snapshot["replicas"].values()) == {1}
    assert sum(snapshot["routed"].values()) >= 3  # 2 fan-out shards + 1 tree
    assert snapshot["fanout"]["requests"] == 1
    assert snapshot["fanout"]["shards"] == 2
    assert snapshot["latency_ms"]["count"] == 2
    text = client.metrics_text()
    for family in (
        "repro_router_replica_up",
        "repro_router_ring_size",
        "repro_router_routed_total",
        "repro_router_retries_total",
        "repro_router_fanout_total",
        "repro_router_unavailable_total",
        "repro_router_upstream_429_total",
        "repro_router_request_latency_seconds_bucket",
    ):
        assert f"\n{family}" in text or text.startswith(family), family
    assert 'repro_router_request_latency_seconds_bucket{model="forest",le="+Inf"} 1' in text


def test_unknown_paths_are_404(router_server):
    with pytest.raises(ServingError) as error:
        ServingClient(router_server.url).request_json("/v1/oops")
    assert error.value.status == 404
    status, _, _ = post_json(f"{router_server.url}/v1/oops", {"x": 1})
    assert status == 404
