"""Unit tests for :mod:`repro.eval.reporting`."""

from __future__ import annotations

from repro.eval.experiment import (
    AccuracyResult,
    EfficiencyResult,
    NoiseModelResult,
    SensitivityResult,
)
from repro.eval.reporting import (
    format_accuracy_results,
    format_efficiency_results,
    format_noise_model_results,
    format_sensitivity_results,
    format_table,
)


class TestFormatTable:
    def test_header_and_rows_rendered(self):
        text = format_table(("name", "value"), [("alpha", 1), ("beta", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert "22" in lines[3]

    def test_columns_are_aligned(self):
        text = format_table(("a", "b"), [("xxxxxx", 1), ("y", 2)])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_empty_rows_still_render_header(self):
        text = format_table(("only",), [])
        assert "only" in text


class TestResultFormatters:
    def test_accuracy_rows(self):
        results = [
            AccuracyResult("Iris", "gaussian", 0.1, 0.9, 0.95),
            AccuracyResult("JapaneseVowel", "raw-samples", float("nan"), 0.8, 0.87),
        ]
        text = format_accuracy_results(results)
        assert "Iris" in text and "gaussian" in text
        assert "10%" in text
        assert "raw" in text
        assert "+0.0500" in text

    def test_noise_model_rows(self):
        text = format_noise_model_results([NoiseModelResult("Segment", 0.1, 0.2, 0.91)])
        assert "10%" in text and "20%" in text and "0.9100" in text

    def test_efficiency_rows(self):
        text = format_efficiency_results(
            [EfficiencyResult("Glass", "UDT-ES", 0.5, 1234, 99999, 21, 0.97)]
        )
        assert "UDT-ES" in text and "1234" in text

    def test_sensitivity_rows(self):
        text = format_sensitivity_results([SensitivityResult("Iris", "s", 100.0, 0.25, 4321)])
        assert "100" in text and "4321" in text
