"""Unit tests for the split-finding strategies (UDT, BP, LP, GP, ES)."""

from __future__ import annotations

import pytest

import numpy as np

from repro.core import SampledPdf, UncertainTuple
from repro.core.dispersion import EntropyMeasure, GainRatioMeasure, get_measure
from repro.core.splits import build_contexts
from repro.core.stats import SplitSearchStats
from repro.core.strategies import (
    STRATEGY_NAMES,
    UDTESStrategy,
    UDTStrategy,
    get_strategy,
)
from repro.data import inject_uncertainty
from repro.data.synthetic import ClassificationSpec, make_point_dataset
from repro.exceptions import SplitError


def _uncertain_contexts(seed=0, n_tuples=40, error_model="gaussian", n_samples=10):
    rng = np.random.default_rng(seed)
    spec = ClassificationSpec(n_tuples=n_tuples, n_attributes=3, n_classes=3, class_separation=2.0)
    data = make_point_dataset(spec, rng)
    uncertain = inject_uncertainty(
        data, width_fraction=0.15, n_samples=n_samples, error_model=error_model
    )
    return build_contexts(uncertain.tuples, [0, 1, 2], uncertain.class_labels)


class TestGetStrategy:
    def test_resolves_all_names(self):
        for name in STRATEGY_NAMES:
            assert get_strategy(name).name == name

    def test_case_and_separator_insensitive(self):
        assert get_strategy("udt_es").name == "UDT-ES"
        assert get_strategy("gp").name == "UDT-GP"

    def test_instance_passthrough(self):
        strategy = UDTStrategy()
        assert get_strategy(strategy) is strategy

    def test_unknown_name_raises(self):
        with pytest.raises(SplitError):
            get_strategy("UDT-XXX")

    def test_es_sample_fraction_validated(self):
        with pytest.raises(SplitError):
            UDTESStrategy(sample_fraction=0.0)
        with pytest.raises(SplitError):
            UDTESStrategy(sample_fraction=1.5)


class TestSafePruningInvariant:
    """All strategies must find a split of identical (optimal) dispersion."""

    @pytest.mark.parametrize("measure_name", ["entropy", "gini"])
    @pytest.mark.parametrize("error_model", ["gaussian", "uniform"])
    def test_same_optimal_dispersion(self, measure_name, error_model):
        contexts = _uncertain_contexts(seed=3, error_model=error_model)
        measure = get_measure(measure_name)
        reference = UDTStrategy().find_best_split(contexts, measure, SplitSearchStats())
        assert reference.is_valid
        for name in STRATEGY_NAMES[1:]:
            candidate = get_strategy(name).find_best_split(contexts, measure, SplitSearchStats())
            assert candidate.is_valid
            assert candidate.dispersion == pytest.approx(reference.dispersion, abs=1e-9), name

    def test_same_optimal_dispersion_gain_ratio(self):
        contexts = _uncertain_contexts(seed=5)
        measure = GainRatioMeasure()
        reference = UDTStrategy().find_best_split(contexts, measure, SplitSearchStats())
        for name in STRATEGY_NAMES[1:]:
            candidate = get_strategy(name).find_best_split(contexts, measure, SplitSearchStats())
            assert candidate.dispersion == pytest.approx(reference.dispersion, abs=1e-9), name

    def test_pruned_strategies_do_no_more_work_than_udt(self):
        contexts = _uncertain_contexts(seed=7)
        measure = EntropyMeasure()
        costs = {}
        for name in STRATEGY_NAMES:
            stats = SplitSearchStats()
            get_strategy(name).find_best_split(contexts, measure, stats)
            costs[name] = stats.total_entropy_like_calculations
        assert costs["UDT-BP"] <= costs["UDT"]
        assert costs["UDT-GP"] <= costs["UDT-LP"] <= costs["UDT"]
        assert costs["UDT-ES"] <= costs["UDT"]


class TestStatsAccounting:
    def test_udt_counts_every_candidate(self):
        contexts = _uncertain_contexts(seed=1)
        stats = SplitSearchStats()
        UDTStrategy().find_best_split(contexts, EntropyMeasure(), stats)
        expected = sum(c.n_candidates for c in contexts)
        assert stats.entropy_evaluations == expected
        assert stats.candidate_split_points == expected
        assert stats.lower_bound_evaluations == 0

    def test_bp_counts_end_points(self):
        contexts = _uncertain_contexts(seed=1)
        stats = SplitSearchStats()
        get_strategy("UDT-BP").find_best_split(contexts, EntropyMeasure(), stats)
        assert stats.end_point_evaluations > 0
        assert stats.intervals_total > 0
        assert stats.lower_bound_evaluations == 0

    def test_gp_counts_lower_bounds_and_prunes(self):
        contexts = _uncertain_contexts(seed=1)
        stats = SplitSearchStats()
        get_strategy("UDT-GP").find_best_split(contexts, EntropyMeasure(), stats)
        assert stats.lower_bound_evaluations > 0
        assert stats.intervals_pruned_by_bound > 0

    def test_stats_merge_accumulates(self):
        a = SplitSearchStats(entropy_evaluations=3, lower_bound_evaluations=1, intervals_total=2)
        b = SplitSearchStats(entropy_evaluations=4, intervals_pruned_by_bound=1)
        a.merge(b)
        assert a.entropy_evaluations == 7
        assert a.total_entropy_like_calculations == 8
        assert a.intervals_pruned_by_bound == 1


class TestTheorem3Uniform:
    """The Theorem 3 shortcut (end points suffice for uniform pdfs).

    The shortcut is exact for continuous uniform pdfs; for the *sampled*
    uniform pdfs used here it is a close approximation, so it must be enabled
    explicitly and is only required to be near-optimal.
    """

    def test_shortcut_examines_only_end_points(self):
        from repro.core.strategies import UDTBPStrategy

        contexts = _uncertain_contexts(seed=2, error_model="uniform")
        assert all(c.all_uniform for c in contexts)
        stats = SplitSearchStats()
        UDTBPStrategy(assume_linear_counts=True).find_best_split(
            contexts, EntropyMeasure(), stats
        )
        # Every dispersion evaluation was an end-point evaluation.
        assert stats.entropy_evaluations == stats.end_point_evaluations

    def test_shortcut_is_near_optimal_on_uniform_data(self):
        from repro.core.strategies import UDTBPStrategy

        contexts = _uncertain_contexts(seed=2, error_model="uniform")
        exhaustive = UDTStrategy().find_best_split(contexts, EntropyMeasure(), SplitSearchStats())
        shortcut = UDTBPStrategy(assume_linear_counts=True).find_best_split(
            contexts, EntropyMeasure(), SplitSearchStats()
        )
        assert shortcut.dispersion >= exhaustive.dispersion - 1e-12
        assert shortcut.dispersion <= exhaustive.dispersion + 0.05

    def test_without_shortcut_uniform_data_stays_exact(self):
        contexts = _uncertain_contexts(seed=2, error_model="uniform")
        exhaustive = UDTStrategy().find_best_split(contexts, EntropyMeasure(), SplitSearchStats())
        pruned = get_strategy("UDT-BP").find_best_split(
            contexts, EntropyMeasure(), SplitSearchStats()
        )
        assert pruned.dispersion == pytest.approx(exhaustive.dispersion, abs=1e-9)


class TestEdgeCases:
    def test_single_class_returns_invalid_split(self):
        tuples = [
            UncertainTuple([SampledPdf.point(float(i))], "only") for i in range(5)
        ]
        contexts = build_contexts(tuples, [0], ["only"])
        for name in STRATEGY_NAMES:
            result = get_strategy(name).find_best_split(
                contexts, EntropyMeasure(), SplitSearchStats()
            )
            # A split exists but cannot reduce dispersion below zero; the
            # builder rejects it via the gain test.  What matters here is
            # that no strategy crashes and dispersion is not negative.
            assert result.dispersion >= 0.0 or result.dispersion == float("inf")

    def test_identical_values_cannot_be_split(self):
        tuples = [
            UncertainTuple([SampledPdf.point(1.0)], "a"),
            UncertainTuple([SampledPdf.point(1.0)], "b"),
        ]
        contexts = build_contexts(tuples, [0], ["a", "b"])
        for name in STRATEGY_NAMES:
            result = get_strategy(name).find_best_split(
                contexts, EntropyMeasure(), SplitSearchStats()
            )
            assert not result.is_valid

    def test_two_point_tuples_split_perfectly(self):
        tuples = [
            UncertainTuple([SampledPdf.point(0.0)], "a"),
            UncertainTuple([SampledPdf.point(10.0)], "b"),
        ]
        contexts = build_contexts(tuples, [0], ["a", "b"])
        for name in STRATEGY_NAMES:
            result = get_strategy(name).find_best_split(
                contexts, EntropyMeasure(), SplitSearchStats()
            )
            assert result.is_valid
            assert result.dispersion == pytest.approx(0.0)
            assert result.split_point == pytest.approx(0.0)

    def test_es_with_full_sampling_equals_gp_result(self):
        contexts = _uncertain_contexts(seed=9)
        full = UDTESStrategy(sample_fraction=1.0).find_best_split(
            contexts, EntropyMeasure(), SplitSearchStats()
        )
        reference = UDTStrategy().find_best_split(contexts, EntropyMeasure(), SplitSearchStats())
        assert full.dispersion == pytest.approx(reference.dispersion, abs=1e-9)
