"""Synthetic point-data generators.

The UCI datasets used by the paper are not redistributable inside this
offline environment, so the experiments run on seeded synthetic stand-ins
with the same shape (number of tuples, attributes and classes) — see
DESIGN.md for the substitution rationale.  The generator produces
class-conditional Gaussian mixtures: each class owns one or more cluster
centres in attribute space and tuples are drawn around the centres with a
controlled spread, giving data that is separable but overlapping — the regime
in which both decision trees and the AVG/UDT accuracy gap are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import UncertainDataset
from repro.exceptions import DatasetError

__all__ = ["ClassificationSpec", "make_classification_points", "make_point_dataset"]


@dataclass(frozen=True)
class ClassificationSpec:
    """Shape and difficulty parameters of a synthetic classification task.

    Attributes
    ----------
    n_tuples, n_attributes, n_classes:
        Dataset shape.
    class_separation:
        Distance between cluster centres in units of the cluster standard
        deviation; larger values make the task easier.
    clusters_per_class:
        Number of Gaussian clusters per class.
    integer_domain:
        When true, values are rounded to integers (emulating the quantised
        attributes of PenDigits / Vehicle / Satellite, for which the paper
        found uniform error models to work best).
    """

    n_tuples: int
    n_attributes: int
    n_classes: int
    class_separation: float = 2.5
    clusters_per_class: int = 1
    integer_domain: bool = False

    def validate(self) -> None:
        if self.n_tuples < self.n_classes:
            raise DatasetError("need at least one tuple per class")
        if self.n_attributes < 1:
            raise DatasetError("need at least one attribute")
        if self.n_classes < 2:
            raise DatasetError("need at least two classes")
        if self.class_separation <= 0:
            raise DatasetError("class_separation must be positive")
        if self.clusters_per_class < 1:
            raise DatasetError("clusters_per_class must be at least 1")


def make_classification_points(
    spec: ClassificationSpec, rng: np.random.Generator | None = None
) -> tuple[np.ndarray, list[str]]:
    """Draw a synthetic classification problem.

    Returns
    -------
    (values, labels)
        ``values`` is an ``(n_tuples, n_attributes)`` float array; ``labels``
        is a list of class-label strings ``"C0"``, ``"C1"``, ...
    """
    spec.validate()
    rng = rng or np.random.default_rng()

    n_clusters = spec.n_classes * spec.clusters_per_class
    # Cluster centres drawn on a unit hypercube scaled by the separation, so
    # classes overlap partially (realistic difficulty) rather than being
    # trivially separable or hopeless.
    centres = rng.normal(0.0, spec.class_separation, size=(n_clusters, spec.n_attributes))

    counts = np.full(spec.n_tuples % spec.n_classes, 1, dtype=int)
    per_class = np.full(spec.n_classes, spec.n_tuples // spec.n_classes, dtype=int)
    per_class[: counts.size] += 1

    rows: list[np.ndarray] = []
    labels: list[str] = []
    for class_index in range(spec.n_classes):
        n_class_tuples = int(per_class[class_index])
        cluster_ids = rng.integers(0, spec.clusters_per_class, size=n_class_tuples)
        for cluster_id in cluster_ids:
            centre = centres[class_index * spec.clusters_per_class + cluster_id]
            rows.append(centre + rng.normal(0.0, 1.0, size=spec.n_attributes))
            labels.append(f"C{class_index}")
    values = np.vstack(rows)
    if spec.integer_domain:
        # Rescale to a 0-100 integer grid, as in quantised sensor data.
        low = values.min(axis=0)
        high = values.max(axis=0)
        span = np.where(high > low, high - low, 1.0)
        values = np.round((values - low) / span * 100.0)
    # Shuffle tuples so that class labels are not contiguous.
    order = rng.permutation(values.shape[0])
    values = values[order]
    labels = [labels[i] for i in order]
    return values, labels


def make_point_dataset(
    spec: ClassificationSpec,
    rng: np.random.Generator | None = None,
    attribute_names: list[str] | None = None,
) -> UncertainDataset:
    """Synthetic point-valued :class:`~repro.core.dataset.UncertainDataset`."""
    values, labels = make_classification_points(spec, rng)
    return UncertainDataset.from_points(values, labels, attribute_names=attribute_names)
