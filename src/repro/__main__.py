"""``python -m repro`` — run the paper's experiments from the command line."""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
