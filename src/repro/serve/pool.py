"""Sharded multi-process prediction backend for the inference engine.

The coalescer amortises per-call costs by merging requests into one columnar
``predict_proba`` call — but that call still runs on one core, behind the
GIL of the serving process.  :class:`WorkerPool` is the next lever from the
ROADMAP: it shards each coalesced batch across ``n_workers`` OS processes,
so a saturated server scales with cores instead of serialising every batch
through the parent interpreter.

Design constraints that make this correct:

* **models are shared, not rebuilt** — the parent publishes each model
  snapshot once as a :class:`~repro.serve.shm.SharedModelSegment` (archive
  JSON + the distribution matrix every tree node views into) and workers
  attach it by name + generation (:func:`repro.serve.shm.attach_model`):
  zero archive I/O in the workers, and the matrix — the bulk of a model —
  occupies physical memory once for the whole pool instead of once per
  process.  Segments are generation-tokened, so a hot reload racing a
  queued batch can never mix two models' outputs: workers either serve the
  exact published snapshot or (segment already drained) refuse with
  ``None`` and the engine serves that batch in-process from its own pinned
  snapshot.
* **archive-rebuild fallback** — when no segment is available (shared
  memory unsupported, or the pool is driven directly by path), workers
  fall back to loading the archive themselves, cached per ``(mtime_ns,
  size)`` token exactly as before; ``expected_token`` pins that path the
  same way the segment generation pins the shared path.
* **bit-identical outputs** — every row of a batch is classified
  independently, so splitting a matrix with :func:`numpy.array_split` and
  concatenating the per-shard probability blocks in shard order returns
  exactly what one in-process call would (property-tested against the
  single-process engine in ``tests/serve/test_pool.py`` and
  ``tests/property/test_serving_equivalence.py``).
* **small batches stay whole** — shards smaller than ``min_shard_rows``
  are not worth a round of pickling; the pool sends such batches to a
  single worker instead of fanning out.

Select it with ``repro serve --workers N`` (the single-process engine
remains the default) or pass ``pool=WorkerPool(N)`` to
:class:`~repro.serve.engine.InferenceEngine` directly.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from pathlib import Path

import numpy as np

from repro.exceptions import ServingError

__all__ = ["WorkerPool"]


def _worker_context():
    """A non-fork multiprocessing context for the executor.

    The pool lives inside a multi-threaded server; forking there can
    inherit locks held by other threads mid-operation and deadlock the
    child (the pattern CPython 3.12 deprecates).  ``forkserver`` forks from
    a clean single-threaded helper — preloaded with the serving modules so
    each worker starts in milliseconds instead of re-importing numpy —
    and ``spawn`` is the fallback where it is unavailable.
    """
    try:
        context = multiprocessing.get_context("forkserver")
    except ValueError:
        return multiprocessing.get_context("spawn")
    context.set_forkserver_preload(["repro.serve.engine", "repro.serve.pool"])
    return context

#: Per-process model cache for the archive-rebuild fallback:
#: path -> (mtime_ns, size, loaded model).  Lives in the *worker* processes;
#: the parent never populates it.  (The shared-memory fast path keeps its
#: own attachment cache in :mod:`repro.serve.shm`.)
_WORKER_MODELS: dict = {}


def _worker_model(path: str, expected_token):
    """The worker-local model for ``path``, reloaded when the file changes.

    ``expected_token`` is the ``(mtime_ns, size)`` the engine's model
    snapshot was loaded from; if the file on disk no longer matches (a hot
    reload raced the queue, or the archive vanished), the worker refuses
    with ``None`` and the engine classifies the batch in-process with the
    exact snapshot instead.
    """
    from repro.api.persistence import load_model

    try:
        stat = Path(path).stat()
    except FileNotFoundError:
        return None
    token = (stat.st_mtime_ns, stat.st_size)
    if expected_token is not None and token != tuple(expected_token):
        return None
    cached = _WORKER_MODELS.get(path)
    if cached is None or cached[0] != token:
        _WORKER_MODELS[path] = (token, load_model(path))
        cached = _WORKER_MODELS[path]
    return cached[1]


def _worker_predict(path: str, predict_engine: str, expected_token, segment, matrix):
    """Classify one shard inside a worker process (``None`` = snapshot refused).

    ``segment`` (a :class:`~repro.serve.shm.SharedModelSegment` spec dict)
    selects the zero-copy path: attach the published segment and serve from
    it, never touching the archive.  Without a spec — or if the segment has
    already been drained — the worker falls back to the token-pinned
    archive rebuild.
    """
    from repro.serve.engine import invoke_model

    model = None
    if segment is not None:
        from repro.serve.shm import attach_model

        model = attach_model(segment)
    if model is None:
        model = _worker_model(path, expected_token)
    if model is None:
        return None
    return invoke_model(model, matrix, predict_engine)


class WorkerPool:
    """Shards coalesced batches across ``n_workers`` model-serving processes."""

    def __init__(
        self,
        n_workers: int,
        *,
        predict_engine: str = "columnar",
        min_shard_rows: int = 8,
        shard_timeout_s: float = 60.0,
        metrics=None,
    ) -> None:
        if n_workers < 1:
            raise ServingError(f"n_workers must be at least 1, got {n_workers}")
        if min_shard_rows < 1:
            raise ServingError(f"min_shard_rows must be at least 1, got {min_shard_rows}")
        if shard_timeout_s <= 0:
            raise ServingError(
                f"shard_timeout_s must be positive, got {shard_timeout_s}"
            )
        self.n_workers = n_workers
        self.predict_engine = predict_engine
        self.min_shard_rows = min_shard_rows
        self.shard_timeout_s = shard_timeout_s
        # Shard fan-out counters land here; the engine adopts the pool and
        # points this at its own ServingMetrics, so /metrics reports
        # worker-pool utilisation without the pool importing the registry.
        self.metrics = metrics
        self._broken = False
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=n_workers, mp_context=_worker_context()
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            # A broken pool may hold a hung worker; waiting on it would hang
            # shutdown too, and there is nothing left worth waiting for.
            executor.shutdown(wait=not self._broken, cancel_futures=self._broken)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- prediction ----------------------------------------------------------

    def _n_shards(self, n_rows: int) -> int:
        by_size = max(1, n_rows // self.min_shard_rows)
        return min(self.n_workers, by_size)

    def predict_proba(
        self, model_path, matrix: np.ndarray, *, expected_token=None, segment=None
    ) -> "np.ndarray | None":
        """Class probabilities for ``matrix``, computed across the workers.

        The matrix is split into up to ``n_workers`` contiguous shards
        (never smaller than ``min_shard_rows``), each classified by a worker
        against the shared model snapshot, and the per-shard blocks are
        concatenated back in order — bit-identical to one in-process
        ``predict_proba`` call.

        ``segment`` (a published :class:`~repro.serve.shm.SharedModelSegment`
        spec) lets workers attach the snapshot over shared memory instead of
        rebuilding from ``model_path``.  ``expected_token`` (the archive's
        ``(mtime_ns, size)`` at snapshot load time) pins the archive
        fallback to exactly those bytes.  If any worker cannot serve the
        pinned snapshot either way, the call returns ``None`` and the
        caller serves its own model snapshot in-process instead.
        """
        executor = self._executor
        if executor is None:
            raise ServingError("the worker pool is closed", status=503)
        if self._broken:
            raise ServingError("the worker pool is broken (a shard hung)", status=503)
        n_rows = int(matrix.shape[0])
        if n_rows == 0:
            raise ServingError("cannot shard an empty batch")  # engine never sends one
        path = str(model_path)
        shards = np.array_split(matrix, self._n_shards(n_rows))
        if self.metrics is not None:
            self.metrics.record_pool(len(shards))
        futures = [
            executor.submit(
                _worker_predict, path, self.predict_engine, expected_token, segment, shard
            )
            for shard in shards
        ]
        try:
            # The timeout covers a *hung* (not crashed) worker — without it
            # one stuck shard would wedge the engine's single coalescer
            # thread, and with it the whole server, forever.
            blocks = [future.result(timeout=self.shard_timeout_s) for future in futures]
        except FuturesTimeoutError:
            # Latch broken so later batches fail fast (and the engine falls
            # back to in-process serving) instead of re-paying the timeout.
            self._broken = True
            for future in futures:
                future.cancel()
            raise ServingError(
                f"worker pool shard did not answer within {self.shard_timeout_s:.0f}s",
                status=503,
            ) from None
        if any(block is None for block in blocks):
            return None
        return blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
