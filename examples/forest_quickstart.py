"""Forest quickstart: bagging the uncertain trees, persisting, serving.

Run with::

    python examples/forest_quickstart.py

Walks the ensemble subsystem end to end: fit a bagged
:class:`~repro.ensemble.UDTForestClassifier` on noisy arrays (parallel
member training, deterministic under ``random_state``), compare it against
a single UDT tree, save the forest as a format-version-2 archive, reload
it, and serve it over HTTP with the same stack that serves single trees.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import UDTClassifier, UDTForestClassifier, load_model
from repro.api import gaussian
from repro.api.persistence import read_model_metadata
from repro.serve import ServingClient, create_server


def main() -> None:
    # Noisy, overlapping classes — the high-variance regime where bagging
    # pays: each reading is modelled as a Gaussian pdf spanning 15 % of the
    # attribute's range (the paper's error model).
    rng = np.random.default_rng(7)
    X = np.vstack([rng.normal(0.0, 1.2, (80, 3)), rng.normal(1.2, 1.2, (80, 3))])
    y = np.array(["calm"] * 80 + ["stormy"] * 80)
    X_test = np.vstack([rng.normal(0.0, 1.2, (40, 3)), rng.normal(1.2, 1.2, (40, 3))])
    y_test = np.array(["calm"] * 40 + ["stormy"] * 40)
    spec = gaussian(w=0.15, s=30)

    tree = UDTClassifier(spec=spec).fit(X, y)
    forest = UDTForestClassifier(
        n_estimators=21,
        spec=spec,
        random_state=0,     # same seed -> bit-identical forest, any n_jobs
        n_jobs=2,           # members train in parallel processes
    ).fit(X, y)
    print(f"single UDT tree  accuracy: {tree.score(X_test, y_test):.3f}")
    print(f"UDT forest (21)  accuracy: {forest.score(X_test, y_test):.3f}")
    print(f"member trees: {forest.n_trees_}")

    with tempfile.TemporaryDirectory() as tmp:
        models_dir = Path(tmp)
        archive = models_dir / "storm.zip"

        # Format v2 persistence: one zip, kind "forest", every member tree
        # inside.  v1 single-tree archives keep loading unchanged.
        forest.save(archive)
        metadata = read_model_metadata(archive)  # header-only, no tree load
        print(f"archive: kind={metadata['model_kind']}, "
              f"n_trees={metadata['n_trees']}, "
              f"format_version={metadata['format_version']}")

        reloaded = load_model(archive)
        assert np.array_equal(
            reloaded.predict_proba(X_test), forest.predict_proba(X_test)
        )
        print("reload round trip: bit-identical predict_proba")

        # The serving stack treats forest archives like any other model.
        server = create_server(models_dir, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServingClient(server.url)
            result = client.predict("storm", X_test[:3])
            print(f"served labels: {result.labels} (classes {result.classes})")
            assert np.array_equal(
                result.probabilities, forest.predict_proba(X_test[:3])
            )
            print("served probabilities: bit-identical to offline soft voting")
        finally:
            server.close()
            thread.join(timeout=5.0)


if __name__ == "__main__":
    main()
